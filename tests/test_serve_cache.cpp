/// Serving-tier correctness: version-bump invalidation (no entry
/// survives a DataVersion bump), revalidate-vs-miss accounting,
/// stale-reason propagation through cache hits during an injected
/// source outage, front-end auth/admission control, and a 16-seed
/// bit-identical replay of a Zipf flood under the chaos harness.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "aero/server.hpp"
#include "aero/source.hpp"
#include "fabric/fault.hpp"
#include "serve/cache.hpp"
#include "serve/frontend.hpp"
#include "serve/zipf.hpp"

namespace oa = osprey::aero;
namespace of = osprey::fabric;
namespace os = osprey::serve;
namespace ou = osprey::util;
using ou::kDay;
using ou::kHour;
using ou::kMinute;
using ou::kSecond;
using ou::Value;
using ou::ValueObject;

namespace {

Value upper_transform(const Value& args) {
  std::string s = args.at("input").as_string();
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  ValueObject out;
  out["output"] = Value(s);
  return Value(std::move(out));
}

/// The contract every consumer leans on: reason is empty iff fresh.
void expect_reason_iff_stale(const oa::AeroServer::ServedEstimate& est,
                             const std::string& context) {
  EXPECT_EQ(est.stale, !est.reason.empty())
      << context << ": stale=" << est.stale << " reason='" << est.reason
      << "'";
}

}  // namespace

class ServeCacheTest : public ::testing::Test {
 protected:
  of::EventLoop loop;
  of::AuthService auth;
  of::TimerService timers{loop, auth};
  of::TransferService transfers{loop, auth, kSecond, 100.0e6};
  of::FlowsService flows{loop, auth};
  osprey::obs::MetricsRegistry metrics;
  oa::AeroServer server{loop, auth, timers, transfers, flows, "aero",
                        &metrics};
  of::StorageEndpoint eagle{"eagle", loop, auth};
  of::StorageEndpoint scratch{"scratch", loop, auth};
  of::ComputeEndpoint login{"login", loop, auth, 2};
  std::string transform_fn;

  void SetUp() override {
    eagle.create_collection("data", server.token());
    scratch.create_collection("staging", server.token());
    transform_fn =
        login.register_function("upper", upper_transform, 30 * kSecond);
  }

  oa::IngestionFlowSpec ingestion_spec(
      const std::string& name, std::shared_ptr<oa::DataSource> source) {
    oa::IngestionFlowSpec spec;
    spec.name = name;
    spec.source = std::move(source);
    spec.poll_period = kDay;
    spec.first_poll = 0;
    spec.compute = &login;
    spec.function_id = transform_fn;
    spec.staging = &scratch;
    spec.staging_collection = "staging";
    spec.storage = &eagle;
    spec.collection = "data";
    spec.base_path = name;
    return spec;
  }
};

TEST_F(ServeCacheTest, MissThenHitServesWithoutReQueryingTheOrigin) {
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "hello"}});
  auto handles = server.register_ingestion(ingestion_spec("flow-a", source));
  loop.run_until(kHour);

  os::ResultCache cache(server, metrics);
  std::uint64_t origin_before = server.stale_serves() + 0;  // baseline only
  (void)origin_before;
  std::uint64_t queries_before = server.db().query_count();

  os::ResultCache::Result first = cache.lookup(handles.output_uuid);
  EXPECT_EQ(first.outcome, os::CacheOutcome::kMiss);
  ASSERT_TRUE(first.estimate.version.has_value());
  EXPECT_EQ(first.estimate.version->version, 1);
  EXPECT_FALSE(first.estimate.stale);
  expect_reason_iff_stale(first.estimate, "miss");

  std::uint64_t queries_after_miss = server.db().query_count();
  EXPECT_GT(queries_after_miss, queries_before) << "miss must hit the origin";

  os::ResultCache::Result second = cache.lookup(handles.output_uuid);
  EXPECT_EQ(second.outcome, os::CacheOutcome::kHit);
  EXPECT_EQ(second.estimate.version->version, 1);
  EXPECT_EQ(server.db().query_count(), queries_after_miss)
      << "a hit must not query the metadata db";

  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.revalidates(), 0u);
}

TEST_F(ServeCacheTest, VersionBumpInvalidatesNoStaleEntrySurvives) {
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "v1"}, {kDay, "v2"}});
  auto handles = server.register_ingestion(ingestion_spec("flow-a", source));
  loop.run_until(kHour);

  os::ResultCache cache(server, metrics);
  EXPECT_EQ(cache.lookup(handles.output_uuid).outcome,
            os::CacheOutcome::kMiss);
  EXPECT_EQ(cache.lookup(handles.output_uuid).estimate.version->version, 1);

  // Day 2: the upstream payload changes and version 2 publishes. The
  // cached entry must not survive — the next lookup revalidates and
  // serves version 2; serving version 1 as a fresh hit would be the
  // stale-as-fresh bug the serving tier exists to prevent.
  loop.run_until(kDay + kHour);
  ASSERT_EQ(server.db().latest_version_number(handles.output_uuid), 2);

  os::ResultCache::Result after = cache.lookup(handles.output_uuid);
  EXPECT_EQ(after.outcome, os::CacheOutcome::kRevalidate);
  ASSERT_TRUE(after.estimate.version.has_value());
  EXPECT_EQ(after.estimate.version->version, 2);
  EXPECT_FALSE(after.estimate.stale);
  EXPECT_GE(cache.invalidations(), 1u);

  // Direct metadata-db registration (no flow involved) invalidates too.
  server.db().add_version(handles.output_uuid, std::string(64, 'b'), 2,
                          loop.now(), "eagle", "data", "flow-a/transformed");
  os::ResultCache::Result direct = cache.lookup(handles.output_uuid);
  EXPECT_EQ(direct.outcome, os::CacheOutcome::kRevalidate);
  EXPECT_EQ(direct.estimate.version->version, 3);
}

TEST_F(ServeCacheTest, ShardQualifierScopesEntriesAndRebindRequalifies) {
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "hello"}});
  auto handles = server.register_ingestion(ingestion_spec("flow-a", source));
  loop.run_until(kHour);

  os::ResultCache cache(server, metrics);
  cache.set_shard("region-a");
  EXPECT_EQ(cache.shard(), "region-a");

  os::ResultCache::Result first = cache.lookup(handles.output_uuid);
  EXPECT_EQ(first.outcome, os::CacheOutcome::kMiss);
  EXPECT_EQ(first.shard, "region-a");
  EXPECT_EQ(cache.lookup(handles.output_uuid).outcome, os::CacheOutcome::kHit);

  // Rebinding to a different shard must not serve the old shard's
  // entries as hits: the qualifier mismatch forces a revalidate even
  // though the version numbers agree.
  cache.rebind(server, "region-b");
  os::ResultCache::Result rebound = cache.lookup(handles.output_uuid);
  EXPECT_NE(rebound.outcome, os::CacheOutcome::kHit);
  ASSERT_TRUE(rebound.estimate.version.has_value());
  EXPECT_EQ(rebound.estimate.version->version, 1);
  EXPECT_EQ(rebound.shard, "region-b");
  EXPECT_EQ(cache.lookup(handles.output_uuid).outcome, os::CacheOutcome::kHit);
}

TEST_F(ServeCacheTest, RevalidateVsMissAccounting) {
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "v1"}});
  auto handles = server.register_ingestion(ingestion_spec("flow-a", source));
  loop.run_until(kHour);

  os::ResultCache cache(server, metrics);
  // First sight of each uuid is a miss; an invalidated entry is a
  // revalidate, never re-counted as a miss.
  EXPECT_EQ(cache.lookup(handles.output_uuid).outcome,
            os::CacheOutcome::kMiss);
  cache.invalidate(handles.output_uuid);
  EXPECT_EQ(cache.lookup(handles.output_uuid).outcome,
            os::CacheOutcome::kRevalidate);
  EXPECT_EQ(cache.lookup(handles.raw_uuid).outcome, os::CacheOutcome::kMiss);
  EXPECT_EQ(cache.lookup(handles.raw_uuid).outcome, os::CacheOutcome::kHit);

  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.revalidates(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(cache.size(), 2u);

  // Invalidating an absent or already-invalid entry is a no-op.
  cache.invalidate("no-such-uuid");
  cache.invalidate(handles.output_uuid);
  cache.invalidate(handles.output_uuid);
  EXPECT_EQ(cache.invalidations(), 2u);
}

TEST_F(ServeCacheTest, SourceOutageStaleReasonPropagatesThroughCacheHits) {
  of::FaultPlan plan(7);
  plan.script_window(of::FaultKind::kSourceOutage, "flow-a", kDay, 3 * kDay);
  server.set_fault_plan(&plan);

  auto source = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "hello"}});
  auto handles = server.register_ingestion(ingestion_spec("flow-a", source));
  loop.run_until(kHour);

  os::ResultCache cache(server, metrics);
  os::ResultCache::Result fresh = cache.lookup(handles.output_uuid);
  EXPECT_EQ(fresh.outcome, os::CacheOutcome::kMiss);
  EXPECT_FALSE(fresh.estimate.stale);

  // Day 1 poll lands in the outage window: the flow's products degrade
  // and the cached entry is invalidated by the degradation flip.
  loop.run_until(kDay + kHour);
  ASSERT_TRUE(server.degraded(handles.output_uuid));

  os::ResultCache::Result during = cache.lookup(handles.output_uuid);
  EXPECT_EQ(during.outcome, os::CacheOutcome::kRevalidate);
  ASSERT_TRUE(during.estimate.version.has_value()) << "last good survives";
  EXPECT_EQ(during.estimate.version->version, 1);
  EXPECT_TRUE(during.estimate.stale);
  EXPECT_NE(during.estimate.reason.find("outage"), std::string::npos)
      << "reason: " << during.estimate.reason;
  expect_reason_iff_stale(during.estimate, "during outage");

  // Cache HITS during the outage keep the staleness reason attached —
  // the cache must never launder a stale answer into a fresh one.
  os::ResultCache::Result hit = cache.lookup(handles.output_uuid);
  EXPECT_EQ(hit.outcome, os::CacheOutcome::kHit);
  EXPECT_TRUE(hit.estimate.stale);
  EXPECT_EQ(hit.estimate.reason, during.estimate.reason);

  // Day 3 poll: the source answers again, degradation lifts, and the
  // next lookup revalidates back to a fresh answer.
  loop.run_until(3 * kDay + kHour);
  EXPECT_FALSE(server.degraded(handles.output_uuid));
  os::ResultCache::Result after = cache.lookup(handles.output_uuid);
  EXPECT_EQ(after.outcome, os::CacheOutcome::kRevalidate);
  EXPECT_FALSE(after.estimate.stale);
  expect_reason_iff_stale(after.estimate, "after outage");
}

TEST_F(ServeCacheTest, FrontEndDeniesMissingScopeAndShedsOverload) {
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "hello"}});
  auto handles = server.register_ingestion(ingestion_spec("flow-a", source));
  loop.run_until(kHour);

  os::ResultCache cache(server, metrics);
  os::FrontEndConfig config;
  config.max_queue_depth = 4;
  os::FrontEnd frontend(loop, auth, cache, metrics, config);

  std::string reader = auth.issue_token("dash", {of::scopes::kServe});
  std::string intruder = auth.issue_token("intruder", {of::scopes::kCompute});

  std::vector<os::ServeResponse> responses;
  auto collect = [&](const os::ServeResponse& r) { responses.push_back(r); };

  // Wrong scope: denied synchronously, nothing queued.
  frontend.submit({handles.output_uuid, intruder, "intruder"}, collect);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].outcome, os::ServeOutcome::kDenied);
  EXPECT_EQ(frontend.queue_depth(), 0u);

  // Burst past capacity: one in service + 4 queued admit; the rest
  // complete immediately with the explicit shed outcome.
  for (int i = 0; i < 10; ++i) {
    frontend.submit({handles.output_uuid, reader, "dash"}, collect);
  }
  std::size_t shed_now = 0;
  for (const os::ServeResponse& r : responses) {
    if (r.outcome == os::ServeOutcome::kShed) ++shed_now;
  }
  EXPECT_EQ(shed_now, 5u);
  EXPECT_EQ(frontend.shed(), 5u);

  loop.run_until(kHour + kMinute);  // bounded: the poll timer repeats daily
  EXPECT_EQ(frontend.served(), 5u);
  EXPECT_EQ(frontend.denied(), 1u);
  ASSERT_EQ(responses.size(), 11u);

  // The admitted requests resolve to one miss + four hits, and every
  // served estimate obeys the reason-iff-stale contract.
  std::size_t hits = 0, misses = 0;
  for (const os::ServeResponse& r : responses) {
    if (r.outcome == os::ServeOutcome::kHit) ++hits;
    if (r.outcome == os::ServeOutcome::kMiss) ++misses;
    if (r.outcome == os::ServeOutcome::kHit ||
        r.outcome == os::ServeOutcome::kMiss ||
        r.outcome == os::ServeOutcome::kRevalidate) {
      expect_reason_iff_stale(r.estimate, "front-end response");
      EXPECT_GE(r.latency(), 0);
    }
  }
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(hits, 4u);
}

// ---------------------------------------------------------------------------
// Chaos replay: the whole serving stack — polls, an injected outage,
// Zipf flood through the front end — replays bit-identically per seed.
// ---------------------------------------------------------------------------

namespace {

/// One self-contained world: two feeds, a scripted mid-run source
/// outage, and a ~2k-request Zipf flood over the four data objects.
/// Returns a digest of every response plus final counters and the
/// incident log; byte-identical digests mean bit-identical replay.
std::string run_flood_world(std::uint64_t seed) {
  of::EventLoop loop;
  of::AuthService auth;
  of::TimerService timers{loop, auth};
  of::TransferService transfers{loop, auth, kSecond, 100.0e6};
  of::FlowsService flows{loop, auth};
  osprey::obs::MetricsRegistry metrics;
  oa::AeroServer server{loop, auth, timers, transfers, flows, "aero",
                        &metrics};
  of::StorageEndpoint eagle{"eagle", loop, auth};
  of::StorageEndpoint scratch{"scratch", loop, auth};
  of::ComputeEndpoint login{"login", loop, auth, 2};
  eagle.create_collection("data", server.token());
  scratch.create_collection("staging", server.token());
  std::string fn =
      login.register_function("upper", upper_transform, 30 * kSecond);

  of::FaultPlan plan(seed);
  plan.script_window(of::FaultKind::kSourceOutage, "feed-b", 9 * kDay,
                     11 * kDay);
  server.set_fault_plan(&plan);

  auto make_spec = [&](const std::string& name,
                       std::shared_ptr<oa::DataSource> source) {
    oa::IngestionFlowSpec spec;
    spec.name = name;
    spec.source = std::move(source);
    spec.poll_period = kDay;
    spec.first_poll = 0;
    spec.compute = &login;
    spec.function_id = fn;
    spec.staging = &scratch;
    spec.staging_collection = "staging";
    spec.storage = &eagle;
    spec.collection = "data";
    spec.base_path = name;
    return spec;
  };

  auto source_a = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "a1"}, {6 * kDay, "a2"}, {10 * kDay, "a3"}});
  auto source_b = std::make_shared<oa::ScriptedSource>(
      "https://feed/b", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "b1"}, {8 * kDay, "b2"}});
  auto ha = server.register_ingestion(make_spec("feed-a", source_a));
  auto hb = server.register_ingestion(make_spec("feed-b", source_b));

  os::ResultCache cache(server, metrics);
  os::FrontEndConfig config;
  config.max_queue_depth = 32;
  os::FrontEnd frontend(loop, auth, cache, metrics, config);
  std::string reader = auth.issue_token("dash", {of::scopes::kServe});

  std::vector<std::string> objects = {ha.raw_uuid, ha.output_uuid,
                                      hb.raw_uuid, hb.output_uuid};
  os::ZipfTrace zipf(objects.size(), 1.1, seed);

  std::ostringstream digest;
  constexpr int kRequests = 2000;
  for (int i = 0; i < kRequests; ++i) {
    // Spread the flood over days 7..13, through the outage window.
    of::SimTime at = 7 * kDay + static_cast<of::SimTime>(i) * 311 * kSecond;
    std::size_t obj = zipf.item(static_cast<std::uint64_t>(i));
    loop.schedule_at(at, [&, i, obj] {
      frontend.submit(
          {objects[obj], reader, "dash"},
          [&digest, i, obj](const os::ServeResponse& r) {
            digest << i << ' ' << obj << ' '
                   << os::serve_outcome_name(r.outcome) << ' '
                   << (r.estimate.version ? r.estimate.version->version : 0)
                   << ' ' << r.estimate.stale << ' ' << r.estimate.reason
                   << ' ' << r.completed_at << '\n';
            // Acceptance invariant, checked on every flood response.
            EXPECT_EQ(r.estimate.stale, !r.estimate.reason.empty());
          });
    });
  }
  loop.run_until(15 * kDay);

  digest << "hits=" << cache.hits() << " misses=" << cache.misses()
         << " revalidates=" << cache.revalidates()
         << " invalidations=" << cache.invalidations()
         << " served=" << frontend.served() << " shed=" << frontend.shed()
         << " stale_serves=" << server.stale_serves() << '\n';
  digest << plan.log().to_string();
  return digest.str();
}

}  // namespace

class ServeFloodReplay : public ::testing::TestWithParam<int> {};

TEST_P(ServeFloodReplay, FloodTraceReplaysBitIdentically) {
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 0x9e3779b9ULL + 1;
  std::string first = run_flood_world(seed);
  std::string second = run_flood_world(seed);
  EXPECT_EQ(first, second) << "seed " << seed << " diverged";
  // The flood actually exercised the cache and the degradation path.
  EXPECT_NE(first.find("hit"), std::string::npos);
  EXPECT_NE(first.find("revalidate"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, ServeFloodReplay,
                         ::testing::Range(0, 16));
