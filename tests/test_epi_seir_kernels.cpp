#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "epi/kernels.hpp"
#include "epi/seir.hpp"
#include "util/error.hpp"

namespace oe = osprey::epi;

TEST(Seir, ConservesPopulation) {
  oe::SeirParams p;
  oe::SeirState init{99000.0, 0.0, 1000.0, 0.0};
  oe::SeirTrajectory traj = oe::run_seir(p, init, 200);
  for (const oe::SeirState& s : traj.states) {
    EXPECT_NEAR(s.n(), 100000.0, 1e-6);
    EXPECT_GE(s.s, -1e-9);
    EXPECT_GE(s.e, -1e-9);
    EXPECT_GE(s.i, -1e-9);
    EXPECT_GE(s.r, -1e-9);
  }
}

TEST(Seir, EpidemicGrowsWhenR0AboveOne) {
  oe::SeirParams p;
  p.beta = 0.5;
  p.di = 5.0;  // R0 = 2.5
  ASSERT_GT(p.r0(), 1.0);
  oe::SeirState init{999900.0, 0.0, 100.0, 0.0};
  oe::SeirTrajectory traj = oe::run_seir(p, init, 300);
  // Most of the population ends up recovered (final size of R0=2.5
  // epidemic is ~89%).
  double attack_rate = traj.states.back().r / init.n();
  EXPECT_GT(attack_rate, 0.85);
  EXPECT_LT(attack_rate, 0.95);
}

TEST(Seir, EpidemicDiesWhenR0BelowOne) {
  oe::SeirParams p;
  p.beta = 0.1;
  p.di = 5.0;  // R0 = 0.5
  oe::SeirState init{99000.0, 0.0, 1000.0, 0.0};
  oe::SeirTrajectory traj = oe::run_seir(p, init, 365);
  EXPECT_LT(traj.states.back().r / init.n(), 0.05);
  EXPECT_LT(traj.states.back().i, 1.0);
}

TEST(Seir, IncidenceSumsToSusceptibleDepletion) {
  oe::SeirParams p;
  oe::SeirState init{50000.0, 0.0, 50.0, 0.0};
  oe::SeirTrajectory traj = oe::run_seir(p, init, 100);
  double total_inc =
      std::accumulate(traj.incidence.begin(), traj.incidence.end(), 0.0);
  EXPECT_NEAR(total_inc, init.s - traj.states.back().s, 1e-6);
}

TEST(Seir, InvalidArgumentsThrow) {
  oe::SeirParams p;
  p.de = 0.0;
  EXPECT_THROW(oe::run_seir(p, {}, 10), osprey::util::InvalidArgument);
  EXPECT_THROW(oe::run_seir(oe::SeirParams{}, {}, -1),
               osprey::util::InvalidArgument);
  EXPECT_THROW(oe::run_seir(oe::SeirParams{}, {}, 10, 0),
               osprey::util::InvalidArgument);
}

TEST(Kernels, DiscretizedGammaSumsToOne) {
  for (double mean : {3.0, 5.2, 8.0}) {
    std::vector<double> w = oe::discretized_gamma(mean, 1.9, 14);
    EXPECT_EQ(w.size(), 14u);
    double sum = std::accumulate(w.begin(), w.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    for (double x : w) EXPECT_GE(x, 0.0);
  }
}

TEST(Kernels, DiscretizedGammaMeanApproximatelyCorrect) {
  std::vector<double> w = oe::discretized_gamma(5.2, 1.9, 20);
  double mean = 0.0;
  for (std::size_t s = 0; s < w.size(); ++s) {
    mean += w[s] * (static_cast<double>(s) + 1.0);
  }
  // Discretization to [s-1, s) bins shifts the mean by ~+0.5 day.
  EXPECT_NEAR(mean, 5.7, 0.25);
}

TEST(Kernels, GenerationIntervalPeaksNearMean) {
  std::vector<double> w = oe::default_generation_interval();
  std::size_t peak = 0;
  for (std::size_t s = 1; s < w.size(); ++s) {
    if (w[s] > w[peak]) peak = s;
  }
  EXPECT_GE(peak + 1, 4u);
  EXPECT_LE(peak + 1, 6u);
}

TEST(Kernels, SheddingKernelLongerThanGenerationInterval) {
  EXPECT_GT(oe::default_shedding_kernel().size(),
            oe::default_generation_interval().size());
}

TEST(Kernels, RenewalPressureHandlesShortHistory) {
  std::vector<double> inc{10.0, 20.0};
  std::vector<double> w{0.5, 0.3, 0.2};
  // t=0: no history at all.
  EXPECT_DOUBLE_EQ(oe::renewal_pressure(inc, 0, w), 0.0);
  // t=1: only lag-1 available.
  EXPECT_DOUBLE_EQ(oe::renewal_pressure(inc, 1, w), 0.5 * 10.0);
}

TEST(Kernels, RenewalPressureFullWindow) {
  std::vector<double> inc{1.0, 2.0, 3.0, 4.0};
  std::vector<double> w{0.6, 0.4};
  // t=3: 0.6*inc[2] + 0.4*inc[1].
  EXPECT_DOUBLE_EQ(oe::renewal_pressure(inc, 3, w), 0.6 * 3.0 + 0.4 * 2.0);
}

TEST(Kernels, InvalidGammaThrows) {
  EXPECT_THROW(oe::discretized_gamma(-1.0, 1.0, 10),
               osprey::util::InvalidArgument);
  EXPECT_THROW(oe::discretized_gamma(5.0, 1.0, 0),
               osprey::util::InvalidArgument);
}
