/// Compile check for the umbrella header (everything in one TU) plus a
/// tiny cross-module smoke test through it.

#include "osprey.hpp"

#include <gtest/gtest.h>

TEST(Umbrella, EverythingCompilesAndLinks) {
  osprey::num::RngStream rng(1);
  osprey::epi::MetaRvm model(
      osprey::epi::MetaRvmConfig::single_group(10000, 5, 30));
  auto traj = model.run(osprey::epi::MetaRvmParams::nominal(), rng);
  EXPECT_EQ(traj.days, 30);
  EXPECT_EQ(osprey::crypto::Sha256::hash_hex("abc").size(), 64u);
  osprey::core::OspreyPlatform platform;
  platform.run_days(1);
  EXPECT_EQ(platform.loop().now(), osprey::util::kDay);
}
