#include "num/legendre.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace on = osprey::num;

namespace {

/// Trapezoid integral of f over [0,1] at high resolution.
double integrate01(const std::function<double(double)>& f) {
  const int n = 20000;
  double acc = 0.5 * (f(0.0) + f(1.0));
  for (int i = 1; i < n; ++i) {
    acc += f(static_cast<double>(i) / n);
  }
  return acc / n;
}

}  // namespace

TEST(Legendre, DegreeZeroIsOne) {
  EXPECT_DOUBLE_EQ(on::legendre01(0, 0.3), 1.0);
}

TEST(Legendre, KnownLowDegrees) {
  // Orthonormal shifted Legendre: P~1(u) = sqrt(3)(2u-1),
  // P~2(u) = sqrt(5)(6u^2-6u+1).
  for (double u : {0.0, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(on::legendre01(1, u), std::sqrt(3.0) * (2.0 * u - 1.0),
                1e-12);
    EXPECT_NEAR(on::legendre01(2, u),
                std::sqrt(5.0) * (6.0 * u * u - 6.0 * u + 1.0), 1e-12);
  }
}

TEST(Legendre, Orthonormality) {
  for (unsigned j = 0; j <= 4; ++j) {
    for (unsigned k = j; k <= 4; ++k) {
      double ip = integrate01([j, k](double u) {
        return on::legendre01(j, u) * on::legendre01(k, u);
      });
      EXPECT_NEAR(ip, j == k ? 1.0 : 0.0, 1e-6) << j << "," << k;
    }
  }
}

TEST(MultiIndices, CountMatchesBinomial) {
  // |{alpha : |alpha| <= p}| = C(d+p, p).
  auto indices = on::total_degree_multi_indices(5, 3);
  EXPECT_EQ(indices.size(), 56u);  // C(8,3)
  auto indices2 = on::total_degree_multi_indices(2, 4);
  EXPECT_EQ(indices2.size(), 15u);  // C(6,4)? C(6,2)=15
}

TEST(MultiIndices, FirstIsZeroAndGraded) {
  auto indices = on::total_degree_multi_indices(3, 2);
  EXPECT_EQ(indices[0], (std::vector<unsigned>{0, 0, 0}));
  unsigned last_grade = 0;
  for (const auto& idx : indices) {
    unsigned grade = 0;
    for (unsigned k : idx) grade += k;
    EXPECT_GE(grade, last_grade);
    last_grade = grade;
    EXPECT_LE(grade, 2u);
  }
}

TEST(PceBasis, TensorProductEvaluation) {
  auto indices = on::total_degree_multi_indices(2, 2);
  on::Vector u{0.3, 0.7};
  on::Vector basis = on::evaluate_pce_basis(indices, u);
  ASSERT_EQ(basis.size(), indices.size());
  EXPECT_DOUBLE_EQ(basis[0], 1.0);  // constant term
  for (std::size_t a = 0; a < indices.size(); ++a) {
    double expected = on::legendre01(indices[a][0], u[0]) *
                      on::legendre01(indices[a][1], u[1]);
    EXPECT_NEAR(basis[a], expected, 1e-12);
  }
}
