#include "aero/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>

#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace oa = osprey::aero;
namespace of = osprey::fabric;
namespace ou = osprey::util;
using ou::kDay;
using ou::kHour;
using ou::kMinute;
using ou::kSecond;
using ou::Value;
using ou::ValueObject;

namespace {

/// Transformation: upper-cases the payload.
Value upper_transform(const Value& args) {
  std::string s = args.at("input").as_string();
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  ValueObject out;
  out["output"] = Value(s);
  return Value(std::move(out));
}

/// Analysis: concatenates all input payloads in lexicographic payload
/// order (UUIDs are run-dependent, payload order is not).
Value concat_analysis(const Value& args) {
  std::vector<std::string> pieces;
  for (const auto& [uuid, bytes] : args.at("inputs").as_object()) {
    (void)uuid;
    pieces.push_back(bytes.as_string());
  }
  std::sort(pieces.begin(), pieces.end());
  std::string acc;
  for (const std::string& p : pieces) {
    acc += p;
    acc += "|";
  }
  ValueObject outputs;
  outputs["combined.txt"] = Value(acc);
  ValueObject out;
  out["outputs"] = Value(std::move(outputs));
  return Value(std::move(out));
}

}  // namespace

class AeroServerTest : public ::testing::Test {
 protected:
  of::EventLoop loop;
  of::AuthService auth;
  of::TimerService timers{loop, auth};
  of::TransferService transfers{loop, auth, kSecond, 100.0e6};
  of::FlowsService flows{loop, auth};
  oa::AeroServer server{loop, auth, timers, transfers, flows};
  of::StorageEndpoint eagle{"eagle", loop, auth};
  of::StorageEndpoint scratch{"scratch", loop, auth};
  of::ComputeEndpoint login{"login", loop, auth, 2};
  std::string transform_fn;
  std::string analysis_fn;

  void SetUp() override {
    eagle.create_collection("data", server.token());
    scratch.create_collection("staging", server.token());
    transform_fn =
        login.register_function("upper", upper_transform, 30 * kSecond);
    analysis_fn =
        login.register_function("concat", concat_analysis, kMinute);
  }

  oa::IngestionFlowSpec ingestion_spec(
      const std::string& name, std::shared_ptr<oa::DataSource> source) {
    oa::IngestionFlowSpec spec;
    spec.name = name;
    spec.source = std::move(source);
    spec.poll_period = kDay;
    spec.first_poll = 0;
    spec.compute = &login;
    spec.function_id = transform_fn;
    spec.staging = &scratch;
    spec.staging_collection = "staging";
    spec.storage = &eagle;
    spec.collection = "data";
    spec.base_path = name;
    return spec;
  }

  oa::AnalysisFlowSpec analysis_spec(const std::string& name,
                                     std::vector<std::string> inputs,
                                     oa::TriggerPolicy policy) {
    oa::AnalysisFlowSpec spec;
    spec.name = name;
    spec.input_uuids = std::move(inputs);
    spec.policy = policy;
    spec.compute = &login;
    spec.function_id = analysis_fn;
    spec.staging = &scratch;
    spec.staging_collection = "staging";
    spec.storage = &eagle;
    spec.collection = "data";
    spec.base_path = name;
    spec.output_names = {"combined.txt"};
    return spec;
  }
};

TEST_F(AeroServerTest, IngestionDetectsUpdateAndStoresBothVersions) {
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "hello"}});
  oa::IngestionHandles handles =
      server.register_ingestion(ingestion_spec("flow-a", source));
  loop.run_until(kHour);

  EXPECT_EQ(server.updates_detected(), 1u);
  EXPECT_EQ(server.ingestion_runs(), 1u);
  // Raw and transformed objects versioned once each.
  EXPECT_EQ(server.db().latest_version_number(handles.raw_uuid), 1);
  EXPECT_EQ(server.db().latest_version_number(handles.output_uuid), 1);
  // Payloads live on the durable endpoint, transformed correctly.
  EXPECT_EQ(eagle.get("data", "flow-a/raw", server.token()).bytes, "hello");
  EXPECT_EQ(eagle.get("data", "flow-a/transformed", server.token()).bytes,
            "HELLO");
  // Metadata checksum matches the stored payload.
  auto ver = server.db().latest_version(handles.output_uuid);
  EXPECT_EQ(ver->checksum, osprey::crypto::Sha256::hash_hex("HELLO"));
}

TEST_F(AeroServerTest, NoReingestWithoutUpstreamChange) {
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "same"}});
  oa::IngestionHandles handles =
      server.register_ingestion(ingestion_spec("flow-a", source));
  loop.run_until(5 * kDay);
  EXPECT_EQ(server.polls(), 6u);  // day 0..5
  EXPECT_EQ(server.updates_detected(), 1u);
  EXPECT_EQ(server.db().latest_version_number(handles.output_uuid), 1);
}

TEST_F(AeroServerTest, NewUpstreamContentCreatesNewVersion) {
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://feed/a",
      std::vector<std::pair<of::SimTime, std::string>>{
          {0, "week1"}, {7 * kDay, "week2"}});
  oa::IngestionHandles handles =
      server.register_ingestion(ingestion_spec("flow-a", source));
  loop.run_until(10 * kDay);
  EXPECT_EQ(server.updates_detected(), 2u);
  EXPECT_EQ(server.db().latest_version_number(handles.output_uuid), 2);
  EXPECT_EQ(eagle.get("data", "flow-a/transformed", server.token()).bytes,
            "WEEK2");
}

TEST_F(AeroServerTest, AnalysisTriggeredByIngestionOutput) {
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "payload"}});
  oa::IngestionHandles handles =
      server.register_ingestion(ingestion_spec("ing", source));
  std::vector<std::string> outputs = server.register_analysis(
      analysis_spec("ana", {handles.output_uuid}, oa::TriggerPolicy::kAny));
  ASSERT_EQ(outputs.size(), 1u);

  loop.run_until(kHour);
  EXPECT_EQ(server.analysis_runs(), 1u);
  EXPECT_EQ(server.db().latest_version_number(outputs[0]), 1);
  EXPECT_EQ(eagle.get("data", "ana/combined.txt", server.token()).bytes,
            "PAYLOAD|");
}

TEST_F(AeroServerTest, AllPolicyWaitsForEveryInput) {
  auto src_a = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "aa"}});
  auto src_b = std::make_shared<oa::ScriptedSource>(
      "https://feed/b", std::vector<std::pair<of::SimTime, std::string>>{
                            {2 * kDay, "bb"}});
  auto ha = server.register_ingestion(ingestion_spec("ia", src_a));
  auto hb = server.register_ingestion(ingestion_spec("ib", src_b));
  std::vector<std::string> outputs = server.register_analysis(analysis_spec(
      "agg", {ha.output_uuid, hb.output_uuid}, oa::TriggerPolicy::kAll));

  loop.run_until(kDay);  // only A has data
  EXPECT_EQ(server.analysis_runs(), 0u);
  loop.run_until(3 * kDay);  // B arrived on day 2
  EXPECT_EQ(server.analysis_runs(), 1u);
  EXPECT_EQ(eagle.get("data", "agg/combined.txt", server.token()).bytes,
            "AA|BB|");
  EXPECT_EQ(server.db().latest_version_number(outputs[0]), 1);
}

TEST_F(AeroServerTest, AnyPolicyFiresPerInputUpdate) {
  auto src_a = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "a1"}});
  auto src_b = std::make_shared<oa::ScriptedSource>(
      "https://feed/b", std::vector<std::pair<of::SimTime, std::string>>{
                            {kDay, "b1"}});
  auto ha = server.register_ingestion(ingestion_spec("ia", src_a));
  auto hb = server.register_ingestion(ingestion_spec("ib", src_b));
  server.register_analysis(analysis_spec(
      "any", {ha.output_uuid, hb.output_uuid}, oa::TriggerPolicy::kAny));
  loop.run_until(2 * kDay);
  EXPECT_EQ(server.analysis_runs(), 2u);  // once per input update
}

TEST_F(AeroServerTest, ProvenanceRecordsInputsAndOutputs) {
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "x"}});
  auto handles = server.register_ingestion(ingestion_spec("ing", source));
  auto outputs = server.register_analysis(
      analysis_spec("ana", {handles.output_uuid}, oa::TriggerPolicy::kAny));
  loop.run_until(kHour);

  const auto& runs = server.db().runs();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].kind, oa::FlowKind::kIngestion);
  EXPECT_EQ(runs[0].status, oa::RunStatus::kSucceeded);
  EXPECT_EQ(runs[0].outputs.size(), 2u);  // raw + transformed
  EXPECT_EQ(runs[1].kind, oa::FlowKind::kAnalysis);
  ASSERT_EQ(runs[1].inputs.size(), 1u);
  EXPECT_EQ(runs[1].inputs[0].uuid, handles.output_uuid);
  EXPECT_EQ(runs[1].outputs[0].uuid, outputs[0]);
  // The flow takes nonzero virtual time (transfers + compute).
  EXPECT_GT(runs[1].ended, runs[1].started);
}

TEST_F(AeroServerTest, FailingAnalysisRecordedAsFailedRun) {
  std::string bad_fn = login.register_function(
      "bad", [](const Value&) -> Value { throw std::runtime_error("no"); },
      kSecond);
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "x"}});
  auto handles = server.register_ingestion(ingestion_spec("ing", source));
  oa::AnalysisFlowSpec spec =
      analysis_spec("bad-ana", {handles.output_uuid}, oa::TriggerPolicy::kAny);
  spec.function_id = bad_fn;
  auto outputs = server.register_analysis(std::move(spec));
  loop.run_until(kHour);
  EXPECT_EQ(server.failed_runs(), 1u);
  EXPECT_EQ(server.db().latest_version_number(outputs[0]), 0);
}

TEST_F(AeroServerTest, RegistrationValidation) {
  oa::IngestionFlowSpec bad;
  bad.name = "bad";
  EXPECT_THROW(server.register_ingestion(std::move(bad)),
               ou::InvalidArgument);

  oa::AnalysisFlowSpec ana;
  ana.name = "ana";
  ana.input_uuids = {"not-a-registered-uuid"};
  ana.compute = &login;
  ana.function_id = analysis_fn;
  ana.staging = &scratch;
  ana.staging_collection = "staging";
  ana.storage = &eagle;
  ana.collection = "data";
  ana.output_names = {"x"};
  EXPECT_THROW(server.register_analysis(std::move(ana)),
               ou::InvalidArgument);
}

TEST_F(AeroServerTest, MetadataNeverStoresPayloads) {
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "SECRET-PAYLOAD"}});
  auto handles = server.register_ingestion(ingestion_spec("ing", source));
  loop.run_until(kHour);
  // The metadata DB holds checksums/paths, never bytes.
  auto ver = server.db().latest_version(handles.raw_uuid);
  ASSERT_TRUE(ver.has_value());
  EXPECT_EQ(ver->checksum.size(), 64u);
  EXPECT_EQ(ver->checksum.find("SECRET"), std::string::npos);
  EXPECT_EQ(ver->path.find("SECRET"), std::string::npos);
  EXPECT_EQ(ver->size_bytes, 14u);
}

// ---------------------------------------------------------------------------
// Graceful-degradation contract: a ServedEstimate's reason is empty iff
// the estimate is fresh — in every reachable serving state.
// ---------------------------------------------------------------------------

namespace {

void expect_reason_iff_stale(const oa::AeroServer::ServedEstimate& est,
                             const std::string& context) {
  EXPECT_EQ(est.stale, !est.reason.empty())
      << context << ": reason must be empty iff fresh (stale=" << est.stale
      << " reason='" << est.reason << "')";
}

}  // namespace

TEST_F(AeroServerTest, ServeLatestNeverPublishedIsStaleWithReason) {
  // Regression: an object whose producer failed before ever publishing
  // used to report stale=true with an empty reason, letting a consumer
  // (or cache) mistake it for fresh under the "reason iff stale" rule.
  std::string uuid = server.db().register_object("orphan", "doomed-flow");
  oa::AeroServer::ServedEstimate est = server.serve_latest(uuid);
  EXPECT_FALSE(est.version.has_value());
  EXPECT_TRUE(est.stale);
  EXPECT_EQ(est.reason, "never-published");
  expect_reason_iff_stale(est, "never-published");
  EXPECT_EQ(server.stale_serves(), 1u);
}

TEST_F(AeroServerTest, ServeLatestReasonEmptyIffFreshAcrossStates) {
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "hello"}});
  auto handles = server.register_ingestion(ingestion_spec("flow-a", source));

  // Before the first poll completes: never published -> stale + reason.
  expect_reason_iff_stale(server.serve_latest(handles.output_uuid),
                          "pre-publish");
  loop.run_until(kHour);

  // Published and healthy: fresh, no reason.
  oa::AeroServer::ServedEstimate fresh = server.serve_latest(handles.output_uuid);
  ASSERT_TRUE(fresh.version.has_value());
  EXPECT_FALSE(fresh.stale);
  expect_reason_iff_stale(fresh, "fresh");
}

TEST_F(AeroServerTest, UpdateListenersFireOnVersionsAndDegradationFlips) {
  std::vector<std::string> notified;
  std::uint64_t id = server.add_update_listener(
      [&](const std::string& uuid) { notified.push_back(uuid); });

  auto source = std::make_shared<oa::ScriptedSource>(
      "https://feed/a", std::vector<std::pair<of::SimTime, std::string>>{
                            {0, "hello"}});
  auto handles = server.register_ingestion(ingestion_spec("flow-a", source));
  loop.run_until(kHour);

  // Both the raw and transformed objects gained a version.
  EXPECT_EQ(std::count(notified.begin(), notified.end(), handles.raw_uuid), 1);
  EXPECT_EQ(std::count(notified.begin(), notified.end(), handles.output_uuid),
            1);

  // After removal the listener must stay silent.
  server.remove_update_listener(id);
  std::size_t seen = notified.size();
  server.db().add_version(handles.raw_uuid, std::string(64, 'a'), 1,
                          loop.now(), "eagle", "data", "flow-a/raw");
  EXPECT_EQ(notified.size(), seen);
}
