#include "num/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "num/stats.hpp"

namespace on = osprey::num;

TEST(Rng, DeterministicPerSeed) {
  on::RngStream a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  EXPECT_NE(on::RngStream(42).next_u64(), c.next_u64());
}

TEST(Rng, SubstreamsIndependentOfParentDraws) {
  on::RngStream a(7);
  on::RngStream b(7);
  a.next_u64();  // consume from one parent only
  a.next_u64();
  EXPECT_EQ(a.substream(3).next_u64(), b.substream(3).next_u64());
}

TEST(Rng, SubstreamsDiffer) {
  on::RngStream root(7);
  EXPECT_NE(root.substream(0).next_u64(), root.substream(1).next_u64());
}

TEST(Rng, UniformInRange) {
  on::RngStream rng(1);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMoments) {
  on::RngStream rng(2);
  std::vector<double> xs(50000);
  for (double& x : xs) x = rng.uniform();
  EXPECT_NEAR(on::mean(xs), 0.5, 0.01);
  EXPECT_NEAR(on::variance(xs), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntUnbiasedish) {
  on::RngStream rng(3);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_int(10)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 500);  // ~5 sigma
  }
}

TEST(Rng, NormalMoments) {
  on::RngStream rng(4);
  std::vector<double> xs(50000);
  for (double& x : xs) x = rng.normal(2.0, 3.0);
  EXPECT_NEAR(on::mean(xs), 2.0, 0.07);
  EXPECT_NEAR(on::stddev(xs), 3.0, 0.07);
}

TEST(Rng, ExponentialMean) {
  on::RngStream rng(5);
  std::vector<double> xs(50000);
  for (double& x : xs) x = rng.exponential(0.5);
  EXPECT_NEAR(on::mean(xs), 2.0, 0.05);
}

TEST(Rng, GammaMomentsAcrossShapes) {
  on::RngStream rng(6);
  for (double shape : {0.5, 1.0, 2.5, 10.0}) {
    std::vector<double> xs(30000);
    for (double& x : xs) x = rng.gamma(shape, 2.0);
    EXPECT_NEAR(on::mean(xs), shape * 2.0, 0.12 * shape * 2.0) << shape;
    EXPECT_NEAR(on::variance(xs), shape * 4.0, 0.15 * shape * 4.0) << shape;
  }
}

TEST(Rng, BetaMean) {
  on::RngStream rng(7);
  std::vector<double> xs(30000);
  for (double& x : xs) x = rng.beta(2.0, 5.0);
  EXPECT_NEAR(on::mean(xs), 2.0 / 7.0, 0.01);
  for (double x : xs) {
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
  }
}

TEST(Rng, PoissonMomentsSmallAndLargeMean) {
  on::RngStream rng(8);
  for (double mean : {0.5, 5.0, 40.0, 500.0}) {
    std::vector<double> xs(30000);
    for (double& x : xs) x = static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(on::mean(xs), mean, 4.0 * std::sqrt(mean / 30000.0) + 0.01)
        << mean;
    EXPECT_NEAR(on::variance(xs), mean, 0.1 * mean + 0.05) << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  on::RngStream rng(9);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, BinomialEdgeCases) {
  on::RngStream rng(10);
  EXPECT_EQ(rng.binomial(0, 0.5), 0);
  EXPECT_EQ(rng.binomial(100, 0.0), 0);
  EXPECT_EQ(rng.binomial(100, 1.0), 100);
}

struct BinomialCase {
  std::int64_t n;
  double p;
};

class BinomialMoments : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialMoments, MatchesTheory) {
  // Covers all three sampler regimes: Bernoulli sum (n<=64), CDF
  // inversion (np<30) and BTRS rejection (np>=30), plus the p>0.5 flip.
  const BinomialCase c = GetParam();
  on::RngStream rng(11);
  const int reps = 30000;
  std::vector<double> xs(reps);
  for (double& x : xs) {
    std::int64_t k = rng.binomial(c.n, c.p);
    ASSERT_GE(k, 0);
    ASSERT_LE(k, c.n);
    x = static_cast<double>(k);
  }
  double mean = static_cast<double>(c.n) * c.p;
  double var = mean * (1.0 - c.p);
  EXPECT_NEAR(on::mean(xs), mean, 5.0 * std::sqrt(var / reps) + 1e-9);
  EXPECT_NEAR(on::variance(xs), var, 0.08 * var + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BinomialMoments,
    ::testing::Values(BinomialCase{20, 0.3}, BinomialCase{64, 0.5},
                      BinomialCase{1000, 0.01}, BinomialCase{1000, 0.2},
                      BinomialCase{1000, 0.85}, BinomialCase{100000, 0.4},
                      BinomialCase{5000000, 0.001}));

TEST(Rng, PermutationIsPermutation) {
  on::RngStream rng(12);
  auto perm = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (std::size_t i : perm) {
    ASSERT_LT(i, 100u);
    ASSERT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(Rng, LognormalMedian) {
  on::RngStream rng(13);
  std::vector<double> xs(40000);
  for (double& x : xs) x = rng.lognormal(1.0, 0.5);
  EXPECT_NEAR(on::median(xs), std::exp(1.0), 0.05);
}
