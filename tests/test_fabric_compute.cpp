#include "fabric/compute.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace of = osprey::fabric;
namespace ou = osprey::util;
using ou::kMinute;
using ou::kSecond;
using ou::Value;

class ComputeTest : public ::testing::Test {
 protected:
  of::EventLoop loop;
  of::AuthService auth;
  std::string token = auth.issue_full_token("user");

  static Value doubler(const Value& args) {
    ou::ValueObject out;
    out["y"] = Value(args.at("x").as_double() * 2.0);
    return Value(std::move(out));
  }
};

TEST_F(ComputeTest, LoginNodeExecutesWithDeclaredCost) {
  of::ComputeEndpoint login("login", loop, auth, 2);
  std::string fn = login.register_function("double", doubler, 30 * kSecond);
  EXPECT_TRUE(login.has_function(fn));
  double result = 0.0;
  ou::ValueObject args;
  args["x"] = Value(21.0);
  login.execute(fn, Value(args), token,
                [&](const Value& r, const of::ComputeTaskRecord& rec) {
                  result = r.at("y").as_double();
                  EXPECT_EQ(rec.status, of::ComputeTaskStatus::kSucceeded);
                  EXPECT_EQ(rec.completed - rec.started, 30 * kSecond);
                });
  loop.run_all();
  EXPECT_DOUBLE_EQ(result, 42.0);
}

TEST_F(ComputeTest, LoginNodeSlotsSerializeWork) {
  of::ComputeEndpoint login("login", loop, auth, 1);
  std::string fn =
      login.register_function("slow", [](const Value&) { return Value(1); },
                              kMinute);
  std::vector<of::SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    ou::ValueObject args;
    login.execute(fn, Value(args), token,
                  [&](const Value&, const of::ComputeTaskRecord& rec) {
                    completions.push_back(rec.completed);
                  });
  }
  loop.run_all();
  ASSERT_EQ(completions.size(), 3u);
  // One slot: completions 1, 2, 3 minutes.
  EXPECT_EQ(completions[0], kMinute);
  EXPECT_EQ(completions[1], 2 * kMinute);
  EXPECT_EQ(completions[2], 3 * kMinute);
}

TEST_F(ComputeTest, TwoSlotsRunConcurrently) {
  of::ComputeEndpoint login("login", loop, auth, 2);
  std::string fn =
      login.register_function("slow", [](const Value&) { return Value(1); },
                              kMinute);
  std::vector<of::SimTime> completions;
  for (int i = 0; i < 2; ++i) {
    login.execute(fn, Value(ou::ValueObject{}), token,
                  [&](const Value&, const of::ComputeTaskRecord& rec) {
                    completions.push_back(rec.completed);
                  });
  }
  loop.run_all();
  EXPECT_EQ(completions[0], kMinute);
  EXPECT_EQ(completions[1], kMinute);
}

TEST_F(ComputeTest, BatchEndpointPaysQueueWait) {
  of::BatchScheduler pbs(loop, 1);
  of::ComputeEndpoint compute("compute", loop, auth, pbs);
  std::string fn = compute.register_function(
      "analysis", [](const Value&) { return Value(0); }, 20 * kMinute);
  std::vector<of::SimTime> starts;
  for (int i = 0; i < 2; ++i) {
    compute.execute(fn, Value(ou::ValueObject{}), token,
                    [&](const Value&, const of::ComputeTaskRecord& rec) {
                      starts.push_back(rec.started);
                    });
  }
  loop.run_all();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[1] - starts[0], 20 * kMinute);  // one node: serialized
  EXPECT_EQ(pbs.jobs().size(), 2u);
}

TEST_F(ComputeTest, InputDependentCost) {
  of::ComputeEndpoint login("login", loop, auth, 1);
  std::string fn = login.register_function(
      "sized", [](const Value&) { return Value(0); },
      of::CostFn([](const Value& args) {
        return args.at("n").as_int() * kSecond;
      }));
  of::SimTime completed = -1;
  ou::ValueObject args;
  args["n"] = Value(17);
  login.execute(fn, Value(args), token,
                [&](const Value&, const of::ComputeTaskRecord& rec) {
                  completed = rec.completed;
                });
  loop.run_all();
  EXPECT_EQ(completed, 17 * kSecond);
}

TEST_F(ComputeTest, FunctionExceptionBecomesFailedTask) {
  of::ComputeEndpoint login("login", loop, auth, 1);
  std::string fn = login.register_function(
      "bad",
      [](const Value&) -> Value { throw std::runtime_error("kaboom"); },
      kSecond);
  bool saw_failure = false;
  login.execute(fn, Value(ou::ValueObject{}), token,
                [&](const Value& result, const of::ComputeTaskRecord& rec) {
                  saw_failure = true;
                  EXPECT_EQ(rec.status, of::ComputeTaskStatus::kFailed);
                  EXPECT_NE(rec.error.find("kaboom"), std::string::npos);
                  EXPECT_TRUE(result.is_null());
                });
  loop.run_all();
  EXPECT_TRUE(saw_failure);
}

TEST_F(ComputeTest, UnknownFunctionAndScopeChecks) {
  of::ComputeEndpoint login("login", loop, auth, 1);
  EXPECT_THROW(login.execute("fn-none", Value(), token, nullptr),
               ou::NotFound);
  std::string fn = login.register_function(
      "f", [](const Value&) { return Value(0); }, kSecond);
  std::string weak = auth.issue_token("weak", {of::scopes::kStorageRead});
  EXPECT_THROW(login.execute(fn, Value(), weak, nullptr), ou::AuthError);
}

TEST_F(ComputeTest, TaskRecordsAccumulate) {
  of::ComputeEndpoint login("login", loop, auth, 4);
  std::string fn = login.register_function(
      "f", [](const Value&) { return Value(0); }, kSecond);
  for (int i = 0; i < 5; ++i) {
    login.execute(fn, Value(ou::ValueObject{}), token, nullptr);
  }
  loop.run_all();
  EXPECT_EQ(login.tasks().size(), 5u);
  EXPECT_EQ(login.completed_count(), 5u);
  EXPECT_EQ(login.task(0).function_name, "f");
}
