#include "util/file_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/error.hpp"

namespace ou = osprey::util;

TEST(FileIo, RoundTrip) {
  std::string path = "/tmp/osprey-test-io/sub/dir/file.txt";
  std::filesystem::remove_all("/tmp/osprey-test-io");
  ou::write_text_file(path, "hello\nworld\n");
  auto content = ou::read_text_file(path);
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, "hello\nworld\n");
  std::filesystem::remove_all("/tmp/osprey-test-io");
}

TEST(FileIo, OverwriteReplaces) {
  std::string path = "/tmp/osprey-test-io2/f.txt";
  ou::write_text_file(path, "long original content");
  ou::write_text_file(path, "short");
  EXPECT_EQ(ou::read_text_file(path).value(), "short");
  std::filesystem::remove_all("/tmp/osprey-test-io2");
}

TEST(FileIo, MissingFileIsNullopt) {
  EXPECT_FALSE(ou::read_text_file("/tmp/definitely-not-here-osprey").has_value());
}

TEST(FileIo, BinarySafe) {
  std::string path = "/tmp/osprey-test-io3/b.bin";
  std::string payload("\x00\x01\xff\n\r\x7f", 6);
  ou::write_text_file(path, payload);
  EXPECT_EQ(ou::read_text_file(path).value(), payload);
  std::filesystem::remove_all("/tmp/osprey-test-io3");
}
