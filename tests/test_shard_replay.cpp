// 16-seed byte-identity sweep for the sharded fabric (ISSUE PR 10,
// satellite 3). For every seed the same chaos-enabled surveillance
// campaign runs on 1, 2, and 8 shards plus one repeated run, and the
// merged incident log, merged chrome trace, and merged metrics JSON
// must be byte-identical across all four executions. Runs under TSan
// in the `shard` check stage; each seed is its own ctest entry
// (shard_seed_N) via the GTEST_FILTER pattern in tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/usecase_shard.hpp"
#include "fabric/fault.hpp"
#include "shard/fabric.hpp"
#include "util/sim_time.hpp"

namespace sh = osprey::shard;
using osprey::fabric::FaultKind;
using osprey::fabric::FaultPlan;
using osprey::util::kDay;

namespace {

struct RunArtifacts {
  std::string incidents;
  std::string trace;
  std::string metrics;
};

FaultPlan chaos_for(std::uint64_t seed) {
  // Master plan; each partition forks an independent stream keyed by
  // its stable key hash, so these rates apply per partition.
  // kProcessCrash is exercised by the durability tests, not here: it
  // would require mid-epoch recovery orchestration.
  FaultPlan plan(0xC4A05000 + seed);
  plan.set_rate(FaultKind::kTransferDrop, 0.05);
  plan.set_rate(FaultKind::kTransferStall, 0.05);
  plan.set_rate(FaultKind::kTransferCorrupt, 0.03);
  plan.set_rate(FaultKind::kComputeKill, 0.03);
  plan.set_rate(FaultKind::kSourceOutage, 0.02);
  plan.set_rate(FaultKind::kFlowStall, 0.04);
  return plan;
}

RunArtifacts run_campaign(std::uint64_t seed, std::size_t num_shards) {
  sh::ShardedFabricConfig config;
  config.num_shards = num_shards;
  config.seed = 0x5EED0000 + seed;
  sh::ShardedFabric fabric(config);
  fabric.set_chaos(chaos_for(seed));
  fabric.register_campaign(
      osprey::core::make_surveillance_campaign("sweep", 4, 28));
  fabric.run_until(28 * kDay);
  RunArtifacts out;
  out.incidents = fabric.merged_incident_log();
  out.trace = fabric.merged_chrome_trace();
  out.metrics = fabric.merged_metrics().to_json();
  return out;
}

}  // namespace

class ShardReplayTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardReplayTest, ByteIdenticalAcrossShardCountsAndReruns) {
  const std::uint64_t seed = GetParam();
  RunArtifacts base = run_campaign(seed, 1);
  // Chaos at these rates must actually bite, or the sweep proves
  // nothing about fault-path determinism.
  EXPECT_NE(base.incidents.find("[fault]"), std::string::npos)
      << "seed " << seed << " injected no faults";

  RunArtifacts two = run_campaign(seed, 2);
  RunArtifacts eight = run_campaign(seed, 8);
  RunArtifacts again = run_campaign(seed, 8);

  EXPECT_EQ(base.incidents, two.incidents);
  EXPECT_EQ(base.incidents, eight.incidents);
  EXPECT_EQ(base.incidents, again.incidents);

  EXPECT_EQ(base.trace, two.trace);
  EXPECT_EQ(base.trace, eight.trace);
  EXPECT_EQ(base.trace, again.trace);

  EXPECT_EQ(base.metrics, two.metrics);
  EXPECT_EQ(base.metrics, eight.metrics);
  EXPECT_EQ(base.metrics, again.metrics);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardReplayTest,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{16}));
