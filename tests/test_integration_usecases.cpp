/// Integration tests: both paper use cases end-to-end on the platform,
/// at reduced scale so they run in seconds.

#include <gtest/gtest.h>

#include "core/usecase_gsa.hpp"
#include "core/usecase_ww.hpp"
#include "num/stats.hpp"

namespace oc = osprey::core;
namespace on = osprey::num;
namespace ou = osprey::util;

namespace {

oc::WwUseCaseConfig small_ww_config() {
  oc::WwUseCaseConfig cfg;
  cfg.horizon_days = 70;
  cfg.first_poll_day = 28;
  cfg.goldstein.iterations = 800;
  cfg.goldstein.burnin = 400;
  cfg.goldstein.thin = 4;
  cfg.aggregate_draws = 50;
  cfg.seed = 7;
  return cfg;
}

}  // namespace

TEST(WastewaterUseCase, EndToEndPipelineProducesAllOutputs) {
  oc::OspreyPlatform platform;
  oc::WastewaterUseCase usecase(platform, small_ww_config());
  usecase.build();
  usecase.run_to_end();

  const auto& aero = platform.aero();
  // Exact, deterministic event accounting: polling runs daily from day
  // 28; weekly publications observable within the 70-day feed fall on
  // days 28, 35, 42, 49, 56, 63 -> 6 updates per plant. Each triggers
  // one ingestion + one analysis run; the ALL-policy aggregation fires
  // once per complete publication round.
  const std::uint64_t kPublications = 6;
  EXPECT_EQ(aero.updates_detected(), 4 * kPublications);
  EXPECT_EQ(aero.ingestion_runs(), 4 * kPublications);
  EXPECT_EQ(aero.analysis_runs(), 4 * kPublications + kPublications);
  EXPECT_EQ(aero.failed_runs(), 0u);

  // Per-plant estimates exist and track the truth reasonably.
  auto outputs = usecase.plant_outputs();
  ASSERT_EQ(outputs.size(), 4u);
  for (const auto& po : outputs) {
    EXPECT_GT(po.versions, 0);
    ASSERT_GT(po.series.days(), 30u);
    std::vector<double> est(po.series.median.begin() + 7,
                            po.series.median.end() - 7);
    std::vector<double> truth(po.truth.begin() + 7, po.truth.end() - 7);
    EXPECT_LT(on::rmse(est, truth), 0.35) << po.plant.name;
    // 95% band covers a decent share of truth days.
    EXPECT_GT(po.series.coverage(po.truth), 0.5) << po.plant.name;
  }

  // The population-weighted aggregate exists.
  ASSERT_TRUE(usecase.has_aggregate());
  auto agg = usecase.aggregate_output();
  EXPECT_GT(agg.days(), 30u);
  std::vector<double> agg_truth = usecase.aggregate_truth(agg.days());
  std::vector<double> agg_mid(agg.median.begin() + 7, agg.median.end() - 7);
  std::vector<double> truth_mid(agg_truth.begin() + 7, agg_truth.end() - 7);
  EXPECT_LT(on::rmse(agg_mid, truth_mid), 0.3);
}

TEST(WastewaterUseCase, MultiLanguageHarnessesAllInvoked) {
  oc::OspreyPlatform platform;
  oc::WastewaterUseCase usecase(platform, small_ww_config());
  usecase.build();
  usecase.run_to_end();
  auto& registry = usecase.harnesses();
  EXPECT_GT(registry.invocations_by(oc::Language::kPython), 0u);
  EXPECT_GT(registry.invocations_by(oc::Language::kJulia), 0u);
  EXPECT_GT(registry.invocations_by(oc::Language::kR), 0u);
}

TEST(WastewaterUseCase, PayloadsStayOffTheAeroServer) {
  oc::OspreyPlatform platform;
  oc::WastewaterUseCase usecase(platform, small_ww_config());
  usecase.build();
  usecase.run_to_end();
  // Every metadata version matches an object on a storage endpoint.
  const auto& db = platform.aero().db();
  for (const std::string& uuid : db.object_uuids()) {
    auto ver = db.latest_version(uuid);
    if (!ver.has_value()) continue;
    const auto& ep = platform.storage_endpoint(ver->endpoint);
    EXPECT_TRUE(ep.exists(ver->collection, ver->path)) << uuid;
    const auto& obj =
        ep.get(ver->collection, ver->path, platform.aero().token());
    EXPECT_EQ(obj.checksum, ver->checksum);
    EXPECT_EQ(obj.bytes.size(), ver->size_bytes);
  }
}

TEST(WastewaterUseCase, StakeholderHasReadAccess) {
  oc::OspreyPlatform platform;
  oc::WastewaterUseCase usecase(platform, small_ww_config());
  usecase.build();
  usecase.run_to_end();
  // Outputs are shareable via collection permissions (paper §2.2).
  std::string stakeholder_token =
      platform.issue_token("public-health-stakeholder");
  auto& eagle = platform.storage_endpoint(oc::WastewaterUseCase::kStorageName);
  auto listing = eagle.list(oc::WastewaterUseCase::kCollection, "rt/",
                            stakeholder_token);
  EXPECT_GE(listing.size(), 12u);  // 3 outputs x 4 plants
  EXPECT_NO_THROW(
      eagle.get(oc::WastewaterUseCase::kCollection, listing[0],
                stakeholder_token));
  // ... but no write access.
  EXPECT_THROW(eagle.put(oc::WastewaterUseCase::kCollection, "rogue", "x",
                         stakeholder_token),
               ou::AuthError);
}

TEST(GsaUseCase, InterleavedReplicatesProduceTrajectories) {
  oc::OspreyPlatform platform;
  oc::GsaUseCaseConfig cfg;
  cfg.n_replicates = 3;
  cfg.n_workers = 2;
  cfg.music.n_init = 10;
  cfg.music.n_total = 18;
  cfg.music.surrogate_mc_n = 256;
  cfg.music.n_candidates = 50;
  cfg.music.gp.mle_restarts = 0;
  cfg.music.gp.mle_max_iterations = 60;
  cfg.model = osprey::epi::MetaRvmConfig::single_group(50000, 25, 60);
  oc::GsaUseCase usecase(platform, cfg);
  oc::GsaUseCaseResult result = usecase.run();

  ASSERT_EQ(result.replicates.size(), 3u);
  EXPECT_EQ(result.tasks_evaluated, 3u * 18u);
  for (const auto& rep : result.replicates) {
    EXPECT_EQ(rep.evaluations, 18u);
    ASSERT_FALSE(rep.trajectory.empty());
    for (double s1 : rep.final_s1) {
      EXPECT_GE(s1, 0.0);
      EXPECT_LE(s1, 1.0);
    }
    // ts should matter more than phd for total hospitalizations.
    EXPECT_GT(rep.final_s1[0], rep.final_s1[4]);
  }
  EXPECT_GT(result.driver_polls, 0u);
  // The scheduler-launched pool path was used.
  EXPECT_EQ(platform.scheduler("improv-pbs").jobs().size(), 1u);
}

TEST(GsaUseCase, DirectPoolPathAlsoWorks) {
  oc::OspreyPlatform platform;
  oc::GsaUseCaseConfig cfg;
  cfg.launch_via_scheduler = false;
  cfg.n_replicates = 2;
  cfg.n_workers = 2;
  cfg.music.n_init = 8;
  cfg.music.n_total = 12;
  cfg.music.surrogate_mc_n = 128;
  cfg.music.n_candidates = 30;
  cfg.music.gp.mle_restarts = 0;
  cfg.music.gp.mle_max_iterations = 40;
  cfg.model = osprey::epi::MetaRvmConfig::single_group(30000, 20, 45);
  oc::GsaUseCase usecase(platform, cfg);
  oc::GsaUseCaseResult result = usecase.run();
  EXPECT_EQ(result.replicates.size(), 2u);
  EXPECT_EQ(result.tasks_evaluated, 2u * 12u);
}

TEST(GsaUseCase, ReplicatesDifferButAreInternallyDeterministic) {
  auto run_once = [] {
    oc::OspreyPlatform platform;
    oc::GsaUseCaseConfig cfg;
    cfg.launch_via_scheduler = false;
    cfg.n_replicates = 2;
    cfg.n_workers = 2;
    cfg.music.n_init = 8;
    cfg.music.n_total = 12;
    cfg.music.surrogate_mc_n = 128;
    cfg.music.n_candidates = 30;
    cfg.music.gp.mle_restarts = 0;
    cfg.music.gp.mle_max_iterations = 40;
    cfg.model = osprey::epi::MetaRvmConfig::single_group(30000, 20, 45);
    return oc::GsaUseCase(platform, cfg).run();
  };
  oc::GsaUseCaseResult a = run_once();
  oc::GsaUseCaseResult b = run_once();
  // Cross-replicate: different random streams -> different trajectories.
  EXPECT_NE(a.replicates[0].final_s1, a.replicates[1].final_s1);
  // Re-running the whole workflow reproduces results exactly, despite
  // the multi-threaded pool (every evaluation is (x, replicate)-pure).
  for (std::size_t r = 0; r < 2; ++r) {
    ASSERT_EQ(a.replicates[r].trajectory.size(),
              b.replicates[r].trajectory.size());
    EXPECT_EQ(a.replicates[r].final_s1, b.replicates[r].final_s1);
  }
}
