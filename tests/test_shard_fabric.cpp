// ShardedFabric unit + integration tests: the deterministic mailbox
// total order, campaign registration fan-out, aggregation round
// trips, shard-qualified serving, per-partition WAL layout with
// crash-recovery, fault-plan forking, and the merged observability
// artifacts. The 16-seed chaos replay sweep lives in
// test_shard_replay.cpp; this file proves the building blocks.

#include "shard/fabric.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/usecase_shard.hpp"
#include "obs/export.hpp"
#include "shard/mailbox.hpp"
#include "util/durable_fs.hpp"
#include "util/sim_time.hpp"

namespace sh = osprey::shard;
namespace ou = osprey::util;
using osprey::util::kDay;

// --- mailbox ---------------------------------------------------------------

TEST(ShardMailbox, EnvelopeOrderIsTickThenOriginThenSeq) {
  sh::Envelope a, b;
  a.tick = 1;
  b.tick = 2;
  EXPECT_TRUE(sh::envelope_before(a, b));
  b.tick = 1;
  a.origin = 1;
  b.origin = 2;
  EXPECT_TRUE(sh::envelope_before(a, b));
  b.origin = 1;
  a.seq = 3;
  b.seq = 7;
  EXPECT_TRUE(sh::envelope_before(a, b));
  EXPECT_FALSE(sh::envelope_before(b, a));
  EXPECT_FALSE(sh::envelope_before(a, a));
}

TEST(ShardMailbox, OutboxStampsAreSeededAndReplayable) {
  sh::Outbox a(3, 42), b(3, 42), c(3, 43), d(4, 42);
  a.post(1, "x", "t", ou::Value());
  b.post(1, "x", "t", ou::Value());
  c.post(1, "x", "t", ou::Value());
  d.post(1, "x", "t", ou::Value());
  std::uint64_t sa = a.drain()[0].stamp;
  EXPECT_EQ(sa, b.drain()[0].stamp);   // same (origin, seed): identical
  EXPECT_NE(sa, c.drain()[0].stamp);   // different seed: distinct
  EXPECT_NE(sa, d.drain()[0].stamp);   // different origin: distinct
}

TEST(ShardMailbox, MergeIsTotalOrderAcrossSources) {
  sh::Outbox coord(0, 7), p1(1, 7), p2(2, 7);
  p2.post(1, "", "b", ou::Value());
  p1.post(1, "", "a", ou::Value());
  p1.post(2, "", "c", ou::Value());
  coord.post(2, "", "d", ou::Value());
  std::vector<sh::Envelope> merged = sh::merge_envelopes(
      {coord.drain(), p1.drain(), p2.drain()});
  ASSERT_EQ(merged.size(), 4u);
  // tick 1: origin 1 before origin 2; tick 2: origin 0 before origin 1.
  EXPECT_EQ(merged[0].topic, "a");
  EXPECT_EQ(merged[1].topic, "b");
  EXPECT_EQ(merged[2].topic, "d");
  EXPECT_EQ(merged[3].topic, "c");
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end(),
                             [](const sh::Envelope& x, const sh::Envelope& y) {
                               return sh::envelope_before(x, y);
                             }));
}

TEST(ShardMailbox, StableHashAndShardPlacement) {
  EXPECT_EQ(sh::stable_key_hash("feed0"), sh::stable_key_hash("feed0"));
  EXPECT_NE(sh::stable_key_hash("feed0"), sh::stable_key_hash("feed1"));
  for (int f = 0; f < 64; ++f) {
    std::size_t shard = sh::shard_of("feed" + std::to_string(f), 8);
    EXPECT_LT(shard, 8u);
    EXPECT_EQ(shard, sh::shard_of("feed" + std::to_string(f), 8));
  }
}

TEST(ShardCampaign, FeedSpecRoundTripsThroughValue) {
  sh::FeedSpec spec;
  spec.name = "plant-a";
  spec.timeline = {{0, "week0"}, {7 * kDay, "week1"}};
  spec.poll_period = 2 * kDay;
  spec.max_retries = 3;
  sh::FeedSpec back = sh::FeedSpec::from_value(spec.to_value());
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.timeline, spec.timeline);
  EXPECT_EQ(back.poll_period, spec.poll_period);
  EXPECT_EQ(back.max_retries, spec.max_retries);
}

TEST(ShardFault, ForkIsDeterministicAndPerSaltIndependent) {
  osprey::fabric::FaultPlan master(99);
  master.set_rate(osprey::fabric::FaultKind::kTransferDrop, 0.25);
  osprey::fabric::FaultPlan f1 = master.fork(1);
  osprey::fabric::FaultPlan f1b = master.fork(1);
  osprey::fabric::FaultPlan f2 = master.fork(2);
  EXPECT_EQ(f1.seed(), f1b.seed());
  EXPECT_NE(f1.seed(), f2.seed());
  EXPECT_NE(f1.seed(), master.seed());
  // Config is carried over; counters and log are fresh.
  EXPECT_EQ(f1.injected_total(), 0u);
  EXPECT_EQ(f1.log().size(), 0u);
}

// --- end-to-end campaign ---------------------------------------------------

namespace {

sh::CampaignSpec small_campaign(int feeds = 3, int days = 28) {
  return osprey::core::make_surveillance_campaign("iwss", feeds, days);
}

}  // namespace

TEST(ShardFabric, CampaignRunsIngestAnalyzeAggregateRounds) {
  sh::ShardedFabricConfig config;
  config.num_shards = 2;
  sh::ShardedFabric fabric(config);
  fabric.register_campaign(small_campaign());
  ASSERT_EQ(fabric.num_partitions(), 4u);  // 3 feeds + hub
  fabric.run_until(28 * kDay);

  // Every feed partition published analysis versions upward.
  for (int f = 0; f < 3; ++f) {
    sh::ShardPartition& p =
        fabric.partition("iwss-feed" + std::to_string(f));
    ASSERT_EQ(p.feeds().size(), 1u);
    EXPECT_GT(p.server().ingestion_runs(), 0u);
    EXPECT_GT(p.server().analysis_runs(), 0u);
  }
  // The coordinator saw them and dispatched aggregation rounds; the hub
  // executed them and reported aggregate versions back.
  EXPECT_GT(fabric.coordinator().rounds_dispatched("iwss"), 0u);
  EXPECT_GT(fabric.coordinator().aggregates_published("iwss"), 0u);
  EXPECT_LE(fabric.coordinator().aggregates_published("iwss"),
            fabric.coordinator().rounds_dispatched("iwss"));
  EXPECT_FALSE(fabric.partition("iwss-hub").aggregate_uuid().empty());
  EXPECT_GT(fabric.events_processed(), 0u);
}

TEST(ShardFabric, LookupServesShardQualifiedVersions) {
  sh::ShardedFabric fabric;
  fabric.register_campaign(small_campaign());
  fabric.run_until(28 * kDay);

  sh::ShardPartition& p0 = fabric.partition("iwss-feed0");
  std::string qualified = "iwss-feed0/" + p0.feeds()[0].analysis_uuid;
  auto first = fabric.lookup(qualified);
  EXPECT_TRUE(first.estimate.version.has_value());
  EXPECT_EQ(first.shard, "iwss-feed0");
  EXPECT_EQ(first.outcome, osprey::serve::CacheOutcome::kMiss);
  auto second = fabric.lookup(qualified);
  EXPECT_EQ(second.outcome, osprey::serve::CacheOutcome::kHit);
  EXPECT_EQ(second.shard, "iwss-feed0");

  // The hub's aggregate is served under its own shard qualifier.
  auto agg = fabric.lookup("iwss-hub/" +
                           fabric.partition("iwss-hub").aggregate_uuid());
  EXPECT_TRUE(agg.estimate.version.has_value());
  EXPECT_EQ(agg.shard, "iwss-hub");
}

TEST(ShardFabric, ShardCountDoesNotChangeMergedArtifacts) {
  // The core determinism claim, smoke-sized (the full 16-seed chaos
  // sweep across {1, 2, 8} shards is test_shard_replay.cpp).
  std::string trace1, trace8, metrics1, metrics8;
  {
    sh::ShardedFabricConfig config;
    config.num_shards = 1;
    sh::ShardedFabric fabric(config);
    fabric.register_campaign(small_campaign());
    fabric.run_until(14 * kDay);
    trace1 = fabric.merged_chrome_trace();
    metrics1 = fabric.merged_metrics().to_json();
  }
  {
    sh::ShardedFabricConfig config;
    config.num_shards = 8;
    sh::ShardedFabric fabric(config);
    fabric.register_campaign(small_campaign());
    fabric.run_until(14 * kDay);
    trace8 = fabric.merged_chrome_trace();
    metrics8 = fabric.merged_metrics().to_json();
  }
  EXPECT_EQ(trace1, trace8);
  EXPECT_EQ(metrics1, metrics8);
  EXPECT_FALSE(trace1.empty());
}

TEST(ShardFabric, MergedSpansCarryShardLabels) {
  sh::ShardedFabric fabric;
  fabric.register_campaign(small_campaign(2, 14));
  fabric.run_until(14 * kDay);
  std::vector<osprey::obs::SpanRecord> spans = fabric.merged_spans();
  ASSERT_FALSE(spans.empty());
  std::set<std::string> labels;
  for (const auto& s : spans) labels.insert(s.shard);
  EXPECT_TRUE(labels.count("iwss-feed0"));
  EXPECT_TRUE(labels.count("iwss-feed1"));
  EXPECT_TRUE(labels.count("iwss-hub"));
  EXPECT_FALSE(labels.count(""));  // every merged span is attributed
  // Ids are canonical (1..n ascending) after the merge.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].id, i + 1);
  }
}

TEST(ShardFabric, MergedMetricsAndPrometheusAreShardDimensioned) {
  sh::ShardedFabric fabric;
  fabric.register_campaign(small_campaign(2, 14));
  fabric.run_until(14 * kDay);
  ou::Value merged = fabric.merged_metrics();
  ASSERT_TRUE(merged.is_object());
  const auto& shards = merged.at("shards").as_object();
  EXPECT_TRUE(shards.count("coordinator"));
  EXPECT_TRUE(shards.count("iwss-feed0"));
  EXPECT_TRUE(shards.count("iwss-hub"));
  // Totals sum the per-shard counters.
  const auto& totals = merged.at("totals").at("counters").as_object();
  EXPECT_TRUE(totals.count("aero_ingestion_runs_total") ||
              !totals.empty());

  std::string prom = fabric.merged_prometheus();
  EXPECT_NE(prom.find("{shard=\"iwss-feed0\"}"), std::string::npos);
  EXPECT_NE(prom.find("{shard=\"coordinator\"}"), std::string::npos);
}

// --- chaos + durability ----------------------------------------------------

TEST(ShardFabric, ChaosForksIndependentPerPartitionPlans) {
  osprey::fabric::FaultPlan master(0xC0);
  master.set_rate(osprey::fabric::FaultKind::kTransferDrop, 0.08);
  sh::ShardedFabricConfig config;
  config.num_shards = 2;
  sh::ShardedFabric fabric(config);
  fabric.set_chaos(master);
  fabric.register_campaign(small_campaign());
  fabric.run_until(28 * kDay);

  // Each partition drew its own deterministic fault stream.
  std::set<std::uint64_t> seeds;
  for (const std::string& key : fabric.partition_keys()) {
    const osprey::fabric::FaultPlan* plan = fabric.partition(key).chaos();
    ASSERT_NE(plan, nullptr);
    seeds.insert(plan->seed());
  }
  EXPECT_EQ(seeds.size(), fabric.num_partitions());
  // With drops injected, at least one partition recorded incidents and
  // the merged log attributes them by shard header.
  std::string log = fabric.merged_incident_log();
  EXPECT_NE(log.find("=== shard "), std::string::npos);
  EXPECT_NE(log.find("transfer-drop"), std::string::npos);
}

TEST(ShardFabric, PerPartitionWalDirectoriesAndRecovery) {
  ou::MemFs fs;
  sh::CampaignSpec campaign = small_campaign(2, 28);
  std::string analysis_uuid_run1;
  std::string qualified;
  {
    sh::ShardedFabric fabric;
    fabric.register_campaign(campaign);
    auto summary = fabric.enable_durability(fs, "wal");
    EXPECT_EQ(summary.partitions, 3u);
    EXPECT_EQ(summary.replayed, 0u);  // cold start
    fabric.run_until(14 * kDay);
    ASSERT_FALSE(fabric.partition("iwss-feed0").feeds().empty());
    analysis_uuid_run1 = fabric.partition("iwss-feed0").feeds()[0].analysis_uuid;
    qualified = "iwss-feed0/" + analysis_uuid_run1;
    EXPECT_TRUE(fabric.lookup(qualified).estimate.version.has_value());
  }  // whole-fabric crash: every partition's volatile state is gone

  // Each partition owned a disjoint WAL segment directory.
  EXPECT_FALSE(fs.list("wal/iwss-feed0/").empty());
  EXPECT_FALSE(fs.list("wal/iwss-feed1/").empty());
  EXPECT_FALSE(fs.list("wal/iwss-hub/").empty());

  sh::ShardedFabric fabric2;
  fabric2.register_campaign(campaign);
  auto summary = fabric2.enable_durability(fs, "wal");
  EXPECT_EQ(summary.partitions, 3u);
  EXPECT_GT(summary.replayed, 0u);
  EXPECT_EQ(summary.corrupt, 0u);

  // The partition-stable uuid seed means recovery reproduces the same
  // uuid stream: the pre-crash analysis uuid resolves straight from the
  // replayed metadata db, before the first epoch re-registers the flows
  // (registration envelopes deliver at the next epoch barrier).
  auto served = fabric2.lookup(qualified);
  EXPECT_TRUE(served.estimate.version.has_value());

  // And the workflow continues past the crash point under the same ids.
  fabric2.run_until(28 * kDay);
  ASSERT_FALSE(fabric2.partition("iwss-feed0").feeds().empty());
  EXPECT_EQ(fabric2.partition("iwss-feed0").feeds()[0].analysis_uuid,
            analysis_uuid_run1);
  EXPECT_GT(fabric2.coordinator().rounds_dispatched("iwss"), 0u);
}

TEST(ShardFabric, RejectsMalformedKeysAndUnknownPartitions) {
  sh::ShardedFabric fabric;
  sh::CampaignSpec bad;
  bad.name = "c";
  sh::FeedSpec feed;
  feed.name = "a/b";  // '/' collides with serve addressing
  bad.feeds.push_back(feed);
  EXPECT_THROW(fabric.register_campaign(bad), std::exception);

  fabric.register_campaign(small_campaign(1, 7));
  EXPECT_THROW(fabric.partition("nope"), std::exception);
  EXPECT_THROW(fabric.lookup("no-slash"), std::exception);
}
