#include "util/value.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ou = osprey::util;

TEST(Value, DefaultIsNull) {
  ou::Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_object());
}

TEST(Value, ScalarAccessors) {
  EXPECT_TRUE(ou::Value(true).as_bool());
  EXPECT_EQ(ou::Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(ou::Value(2.5).as_double(), 2.5);
  EXPECT_EQ(ou::Value("hi").as_string(), "hi");
}

TEST(Value, IntCoercesToDouble) {
  ou::Value v(7);
  EXPECT_TRUE(v.is_number());
  EXPECT_DOUBLE_EQ(v.as_double(), 7.0);
}

TEST(Value, IntegralDoubleCoercesToInt) {
  EXPECT_EQ(ou::Value(3.0).as_int(), 3);
  EXPECT_THROW(ou::Value(3.5).as_int(), ou::InvalidArgument);
}

TEST(Value, WrongTypeThrows) {
  ou::Value v("text");
  EXPECT_THROW(v.as_bool(), ou::InvalidArgument);
  EXPECT_THROW(v.as_int(), ou::InvalidArgument);
  EXPECT_THROW(v.as_array(), ou::InvalidArgument);
}

TEST(Value, ObjectInsertAndLookup) {
  ou::Value v;
  v["a"] = ou::Value(1);
  v["b"] = ou::Value("x");
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_TRUE(v.contains("b"));
  EXPECT_FALSE(v.contains("c"));
  EXPECT_THROW(v.at("c"), ou::NotFound);
}

TEST(Value, GetOrDefaults) {
  ou::Value v;
  v["x"] = ou::Value(1.5);
  EXPECT_DOUBLE_EQ(v.get_or("x", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(v.get_or("missing", 9.0), 9.0);
  EXPECT_EQ(v.get_or("missing", std::int64_t{7}), 7);
  EXPECT_EQ(v.get_or("missing", std::string("d")), "d");
}

TEST(Value, ArrayAccess) {
  ou::ValueArray arr{ou::Value(1), ou::Value(2), ou::Value(3)};
  ou::Value v(arr);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.at(std::size_t{1}).as_int(), 2);
  EXPECT_THROW(v.at(std::size_t{3}), ou::InvalidArgument);
}

TEST(Value, FromToDoubles) {
  std::vector<double> xs{1.0, 2.5, -3.0};
  ou::Value v = ou::Value::from_doubles(xs);
  EXPECT_EQ(v.to_doubles(), xs);
}

TEST(Value, JsonRoundTripScalars) {
  for (const std::string json :
       {"null", "true", "false", "42", "-17", "2.5", "\"hello\""}) {
    ou::Value v = ou::Value::parse_json(json);
    EXPECT_EQ(ou::Value::parse_json(v.to_json()), v) << json;
  }
}

TEST(Value, JsonRoundTripNested) {
  ou::Value v;
  v["name"] = ou::Value("O'Brien");
  v["population"] = ou::Value(std::int64_t{1300000});
  v["weights"] = ou::Value::from_doubles({0.25, 0.75});
  ou::Value nested;
  nested["deep"] = ou::Value(true);
  v["meta"] = nested;
  ou::Value round = ou::Value::parse_json(v.to_json());
  EXPECT_EQ(round, v);
}

TEST(Value, JsonEscapes) {
  ou::Value v(std::string("line1\nline2\t\"quoted\"\\slash"));
  ou::Value round = ou::Value::parse_json(v.to_json());
  EXPECT_EQ(round.as_string(), v.as_string());
}

TEST(Value, JsonParseUnicodeEscape) {
  ou::Value v = ou::Value::parse_json("\"a\\u0041b\"");
  EXPECT_EQ(v.as_string(), "aAb");
}

TEST(Value, JsonParseWhitespace) {
  ou::Value v = ou::Value::parse_json("  { \"a\" : [ 1 , 2 ] }  ");
  EXPECT_EQ(v.at("a").size(), 2u);
}

TEST(Value, JsonMalformedThrows) {
  for (const std::string bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
        "{\"a\":1}extra"}) {
    EXPECT_THROW(ou::Value::parse_json(bad), ou::InvalidArgument) << bad;
  }
}

TEST(Value, JsonDoubleKeepsDoubleness) {
  ou::Value v = ou::Value::parse_json(ou::Value(2.0).to_json());
  EXPECT_TRUE(v.is_double());
}

TEST(Value, DeterministicSerialization) {
  ou::Value a;
  a["z"] = ou::Value(1);
  a["a"] = ou::Value(2);
  ou::Value b;
  b["a"] = ou::Value(2);
  b["z"] = ou::Value(1);
  EXPECT_EQ(a.to_json(), b.to_json());  // ordered keys
}
