#include <gtest/gtest.h>

#include <cmath>

#include "epi/kernels.hpp"
#include "epi/wastewater.hpp"
#include "num/stats.hpp"
#include "rt/cori.hpp"
#include "rt/ensemble.hpp"
#include "rt/goldstein.hpp"
#include "util/error.hpp"

namespace oe = osprey::epi;
namespace ort = osprey::rt;
namespace on = osprey::num;

namespace {

/// Fast MCMC settings for tests.
ort::GoldsteinConfig test_config(const oe::Plant& plant) {
  ort::GoldsteinConfig cfg;
  cfg.iterations = 1200;
  cfg.burnin = 600;
  cfg.thin = 3;
  cfg.flow_liters_per_day = plant.avg_flow_mgd * 3.785e6;
  cfg.seed = 99;
  return cfg;
}

}  // namespace

TEST(Goldstein, KnotCount) {
  ort::GoldsteinConfig cfg;
  ort::GoldsteinEstimator est(cfg);
  EXPECT_EQ(est.num_knots(8), 2);    // knots at 0, 7 cover day 7
  EXPECT_EQ(est.num_knots(15), 3);   // 0, 7, 14
  EXPECT_EQ(est.num_knots(16), 4);   // needs one past day 15
}

TEST(Goldstein, ConfigValidation) {
  ort::GoldsteinConfig cfg;
  cfg.burnin = cfg.iterations;
  EXPECT_THROW(ort::GoldsteinEstimator{cfg}, osprey::util::InvalidArgument);
}

TEST(Goldstein, RequiresEnoughSamples) {
  ort::GoldsteinEstimator est{ort::GoldsteinConfig{}};
  std::vector<oe::WwSample> samples{{0, 1.0}, {2, 1.0}};
  EXPECT_THROW(est.estimate(samples, 30), osprey::util::InvalidArgument);
}

TEST(Goldstein, ThinnedDrawCountUsesCeilingDivision) {
  // iterations=100, burnin=40, thin=7: draws land at post-burn-in
  // offsets 0, 7, ..., 56 -> ceil(60 / 7) = 9 draws. The old floor
  // division allocated 8 rows and silently dropped the last draw.
  oe::Plant plant = oe::chicago_plants()[0];
  ort::GoldsteinConfig cfg;
  cfg.iterations = 100;
  cfg.burnin = 40;
  cfg.thin = 7;
  cfg.flow_liters_per_day = plant.avg_flow_mgd * 3.785e6;
  oe::WastewaterConfig wcfg;
  wcfg.days = 30;
  oe::WastewaterGenerator gen(plant, oe::chicago_truths()[0], wcfg, 11);
  ort::GoldsteinEstimator est(cfg);
  ort::RtPosterior posterior = est.estimate(gen.samples(), 30);
  EXPECT_EQ(posterior.n_draws(), 9u);
  // Every allocated row was written (no silent zero rows at the tail).
  for (std::size_t d = 0; d < posterior.n_draws(); ++d) {
    EXPECT_GT(posterior.draws(d, 15), 0.0) << "empty draw row " << d;
  }
}

TEST(Goldstein, ExplicitSeedOverloadMatchesConfigSeed) {
  oe::Plant plant = oe::chicago_plants()[0];
  oe::WastewaterConfig wcfg;
  wcfg.days = 40;
  oe::WastewaterGenerator gen(plant, oe::chicago_truths()[0], wcfg, 6);
  ort::GoldsteinConfig cfg = test_config(plant);
  cfg.iterations = 300;
  cfg.burnin = 150;
  ort::GoldsteinEstimator est(cfg);
  ort::RtPosterior a = est.estimate(gen.samples(), 40);
  ort::RtPosterior b = est.estimate(gen.samples(), 40, cfg.seed);
  ort::RtPosterior c = est.estimate(gen.samples(), 40, cfg.seed + 1);
  ASSERT_EQ(a.n_draws(), b.n_draws());
  bool differs_from_c = false;
  for (std::size_t d = 0; d < a.n_draws(); ++d) {
    for (std::size_t t = 0; t < a.days(); ++t) {
      EXPECT_EQ(a.draws(d, t), b.draws(d, t));
      if (a.draws(d, t) != c.draws(d, t)) differs_from_c = true;
    }
  }
  EXPECT_TRUE(differs_from_c) << "seed had no effect on the chain";
}

TEST(Goldstein, NegLogPosteriorFiniteAndPenalizesBadParams) {
  oe::Plant plant = oe::chicago_plants()[0];
  oe::WastewaterConfig wcfg;
  wcfg.days = 60;
  oe::WastewaterGenerator gen(plant, oe::chicago_truths()[0], wcfg, 4);
  ort::GoldsteinEstimator est(test_config(plant));
  int k = est.num_knots(60);
  std::vector<double> theta(static_cast<std::size_t>(k) + 2, 0.0);
  theta[static_cast<std::size_t>(k)] = std::log(100.0);  // log I0
  theta[static_cast<std::size_t>(k) + 1] = std::log(0.5);
  double nlp = est.neg_log_posterior(theta, gen.samples(), 60);
  EXPECT_TRUE(std::isfinite(nlp));
  EXPECT_LT(nlp, 1e11);
  // Absurd sigma is rejected with the guard value.
  theta[static_cast<std::size_t>(k) + 1] = 10.0;
  EXPECT_GE(est.neg_log_posterior(theta, gen.samples(), 60), 1e12);
}

TEST(Goldstein, RecoversConstantRt) {
  // Synthetic data with flat truth R = 1.1: posterior median should sit
  // near 1.1 in the interior of the horizon.
  oe::Plant plant = oe::chicago_plants()[0];
  oe::RtTruthParams truth;
  truth.level = std::log(1.1);
  truth.amp = 0.0;
  truth.trend_per_day = 0.0;
  oe::WastewaterConfig wcfg;
  wcfg.days = 70;
  wcfg.noise_sigma = 0.25;
  oe::WastewaterGenerator gen(plant, truth, wcfg, 21);
  ort::GoldsteinEstimator est(test_config(plant));
  ort::RtPosterior posterior = est.estimate(gen.samples(), 70);
  ort::RtSeries series = posterior.summarize();
  // Interior days (estimation at the edges is harder).
  std::vector<double> interior(series.median.begin() + 14,
                               series.median.end() - 7);
  EXPECT_NEAR(on::median(interior), 1.1, 0.12);
  EXPECT_GT(posterior.acceptance_rate, 0.1);
  EXPECT_LT(posterior.acceptance_rate, 0.9);
}

TEST(Goldstein, TracksTimeVaryingRt) {
  oe::Plant plant = oe::chicago_plants()[0];
  oe::WastewaterConfig wcfg;
  wcfg.days = 100;
  oe::WastewaterGenerator gen(plant, oe::chicago_truths()[0], wcfg, 8);
  ort::GoldsteinEstimator est(test_config(plant));
  ort::RtSeries series = est.estimate(gen.samples(), 100).summarize();
  std::vector<double> truth = gen.true_rt();
  truth.resize(100);
  // Interior accuracy and correlation with the truth wave.
  std::vector<double> est_mid(series.median.begin() + 10,
                              series.median.end() - 10);
  std::vector<double> truth_mid(truth.begin() + 10, truth.end() - 10);
  EXPECT_LT(on::rmse(est_mid, truth_mid), 0.15);
  EXPECT_GT(on::correlation(est_mid, truth_mid), 0.7);
}

TEST(Goldstein, IntervalsWidenWithNoise) {
  oe::Plant plant = oe::chicago_plants()[0];
  oe::WastewaterConfig low_noise;
  low_noise.days = 60;
  low_noise.noise_sigma = 0.1;
  oe::WastewaterConfig high_noise = low_noise;
  high_noise.noise_sigma = 0.8;
  oe::WastewaterGenerator gen_lo(plant, oe::chicago_truths()[0], low_noise, 5);
  oe::WastewaterGenerator gen_hi(plant, oe::chicago_truths()[0], high_noise, 5);
  ort::GoldsteinEstimator est(test_config(plant));
  ort::RtSeries lo = est.estimate(gen_lo.samples(), 60).summarize();
  ort::RtSeries hi = est.estimate(gen_hi.samples(), 60).summarize();
  double lo_width = 0.0, hi_width = 0.0;
  for (std::size_t t = 10; t < 50; ++t) {
    lo_width += lo.hi95[t] - lo.lo95[t];
    hi_width += hi.hi95[t] - hi.lo95[t];
  }
  EXPECT_GT(hi_width, lo_width);
}

TEST(Cori, RecoverConstantROnSyntheticRenewal) {
  // Build a renewal process with constant R = 1.3 and feed the cases in.
  std::vector<double> w = oe::default_generation_interval();
  on::RngStream rng(17);
  std::vector<double> cases(90, 0.0);
  for (int t = 0; t < 14; ++t) cases[static_cast<std::size_t>(t)] = 50.0;
  for (std::size_t t = 14; t < cases.size(); ++t) {
    double pressure = oe::renewal_pressure(cases, t, w);
    cases[t] = static_cast<double>(rng.poisson(1.3 * pressure));
  }
  ort::CoriResult result = ort::estimate_cori(cases);
  // Average the reliable interior estimates.
  std::vector<double> interior;
  for (std::size_t t = 30; t < 85; ++t) {
    if (result.reliable[t]) interior.push_back(result.series.median[t]);
  }
  ASSERT_GT(interior.size(), 20u);
  EXPECT_NEAR(on::mean(interior), 1.3, 0.1);
}

TEST(Cori, CoverageIntervalContainsMedian) {
  std::vector<double> cases(50, 30.0);
  ort::CoriResult result = ort::estimate_cori(cases);
  for (std::size_t t = 10; t < 50; ++t) {
    EXPECT_LT(result.series.lo95[t], result.series.median[t]);
    EXPECT_GT(result.series.hi95[t], result.series.median[t]);
  }
}

TEST(Cori, ConstantCasesImplyRNearOne) {
  std::vector<double> cases(60, 100.0);
  ort::CoriResult result = ort::estimate_cori(cases);
  for (std::size_t t = 30; t < 60; ++t) {
    EXPECT_NEAR(result.series.median[t], 1.0, 0.05) << t;
  }
}

TEST(Cori, UnreliableWhenCountsTiny) {
  std::vector<double> cases(40, 0.1);
  ort::CoriResult result = ort::estimate_cori(cases);
  EXPECT_FALSE(result.reliable[20]);
}

TEST(Ensemble, WeightedAggregationMatchesHandComputation) {
  // Two members with constant draws 1.0 and 2.0, weights 1 and 3:
  // aggregate draw value = (1*1 + 3*2) / 4 = 1.75.
  ort::EnsembleMember a, b;
  a.name = "a";
  a.population_weight = 1.0;
  a.posterior.draws = on::Matrix(10, 5, 1.0);
  b.name = "b";
  b.population_weight = 3.0;
  b.posterior.draws = on::Matrix(10, 5, 2.0);
  ort::RtPosterior agg = ort::aggregate_population_weighted({a, b});
  EXPECT_EQ(agg.n_draws(), 10u);
  EXPECT_EQ(agg.days(), 5u);
  for (std::size_t d = 0; d < 10; ++d) {
    for (std::size_t t = 0; t < 5; ++t) {
      EXPECT_DOUBLE_EQ(agg.draws(d, t), 1.75);
    }
  }
}

TEST(Ensemble, DrawCountsMayDiffer) {
  ort::EnsembleMember a, b;
  a.population_weight = 1.0;
  a.posterior.draws = on::Matrix(4, 3, 1.0);
  b.population_weight = 1.0;
  b.posterior.draws = on::Matrix(8, 3, 3.0);
  ort::RtPosterior agg = ort::aggregate_population_weighted({a, b});
  EXPECT_EQ(agg.n_draws(), 8u);
  EXPECT_DOUBLE_EQ(agg.draws(7, 0), 2.0);
}

TEST(Ensemble, MismatchedHorizonThrows) {
  ort::EnsembleMember a, b;
  a.population_weight = 1.0;
  a.posterior.draws = on::Matrix(4, 3, 1.0);
  b.population_weight = 1.0;
  b.posterior.draws = on::Matrix(4, 5, 1.0);
  EXPECT_THROW(ort::aggregate_population_weighted({a, b}),
               osprey::util::InvalidArgument);
  EXPECT_THROW(ort::aggregate_population_weighted({}),
               osprey::util::InvalidArgument);
}

TEST(Ensemble, AggregationReducesNoise) {
  // Four noisy members around the same truth: the ensemble variance
  // must be below the average member variance.
  on::RngStream rng(3);
  std::vector<ort::EnsembleMember> members(4);
  for (auto& m : members) {
    m.population_weight = 1.0;
    m.posterior.draws = on::Matrix(200, 30);
    for (std::size_t d = 0; d < 200; ++d) {
      for (std::size_t t = 0; t < 30; ++t) {
        m.posterior.draws(d, t) = 1.0 + 0.3 * rng.normal();
      }
    }
  }
  ort::RtPosterior agg = ort::aggregate_population_weighted(members);
  std::vector<double> agg_col(200), member_col(200);
  for (std::size_t d = 0; d < 200; ++d) {
    agg_col[d] = agg.draws(d, 0);
    member_col[d] = members[0].posterior.draws(d, 0);
  }
  EXPECT_LT(on::stddev(agg_col), 0.7 * on::stddev(member_col));
}

TEST(Ensemble, ParallelEstimateMembersBitIdenticalToSerial) {
  // Each plant's chain is a pure function of (samples, days, config), so
  // fanning the estimates out on a pool must be bit-identical to the
  // serial loop — this is the guarantee the Figure-2 speedup rests on.
  const int days = 40;
  auto plants = oe::chicago_plants();
  auto truths = oe::chicago_truths();
  oe::WastewaterConfig wcfg;
  wcfg.days = days;
  std::vector<ort::PlantData> inputs;
  for (std::size_t p = 0; p < 3; ++p) {
    oe::WastewaterGenerator gen(plants[p], truths[p], wcfg, 50 + p);
    ort::PlantData pd;
    pd.name = plants[p].name;
    pd.population_weight = static_cast<double>(plants[p].population_served);
    pd.samples = gen.samples();
    pd.config.iterations = 240;
    pd.config.burnin = 120;
    pd.config.thin = 4;
    pd.config.flow_liters_per_day = plants[p].avg_flow_mgd * 3.785e6;
    pd.config.seed = 700 + p;
    inputs.push_back(std::move(pd));
  }
  std::vector<ort::EnsembleMember> serial =
      ort::estimate_members(inputs, days, nullptr);
  osprey::util::ThreadPool pool(3);
  std::vector<ort::EnsembleMember> parallel =
      ort::estimate_members(inputs, days, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    EXPECT_EQ(serial[p].name, inputs[p].name);
    EXPECT_EQ(parallel[p].name, inputs[p].name);
    EXPECT_EQ(serial[p].population_weight, parallel[p].population_weight);
    ASSERT_EQ(serial[p].posterior.n_draws(), parallel[p].posterior.n_draws());
    for (std::size_t d = 0; d < serial[p].posterior.n_draws(); ++d) {
      for (std::size_t t = 0; t < static_cast<std::size_t>(days); ++t) {
        ASSERT_EQ(serial[p].posterior.draws(d, t),
                  parallel[p].posterior.draws(d, t))
            << "plant " << p << " draw " << d << " day " << t;
      }
    }
  }
  // And the serial path matches a direct estimator call.
  ort::GoldsteinEstimator direct(inputs[0].config);
  ort::RtPosterior ref = direct.estimate(inputs[0].samples, days);
  EXPECT_EQ(serial[0].posterior.draws(0, 0), ref.draws(0, 0));
}

TEST(Ensemble, WeightedSeriesAverage) {
  std::vector<std::vector<double>> series{{1.0, 1.0}, {3.0, 5.0}};
  std::vector<double> weights{3.0, 1.0};
  std::vector<double> avg = ort::weighted_series_average(series, weights);
  EXPECT_DOUBLE_EQ(avg[0], 1.5);
  EXPECT_DOUBLE_EQ(avg[1], 2.0);
}

TEST(RtSeries, CoverageComputation) {
  ort::RtSeries s;
  s.median = {1.0, 1.0, 1.0, 1.0};
  s.lo95 = {0.8, 0.8, 0.8, 0.8};
  s.hi95 = {1.2, 1.2, 1.2, 1.2};
  std::vector<double> truth{1.0, 1.1, 1.5, 0.5};
  EXPECT_DOUBLE_EQ(s.coverage(truth), 0.5);
}
