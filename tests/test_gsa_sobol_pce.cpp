#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gsa/pce.hpp"
#include "gsa/sobol.hpp"
#include "num/simd.hpp"
#include "util/error.hpp"

namespace og = osprey::gsa;
namespace on = osprey::num;

namespace {

/// Additive linear model y = 2 x0 + 1 x1 + 0 x2 on [0,1]^3:
/// exact S1 = ST = (4, 1, 0)/5.
double linear_model(const on::Vector& x) {
  return 2.0 * x[0] + x[1] + 0.0 * x[2];
}

std::vector<on::ParamRange> unit_ranges(std::size_t d) {
  std::vector<on::ParamRange> out(d);
  for (std::size_t j = 0; j < d; ++j) out[j] = {"u", 0.0, 1.0};
  return out;
}

/// Ishigami function on [-pi, pi]^3 — the classic GSA benchmark with
/// known analytic indices.
double ishigami(const on::Vector& x) {
  const double a = 7.0, b = 0.1;
  return std::sin(x[0]) + a * std::sin(x[1]) * std::sin(x[1]) +
         b * std::pow(x[2], 4.0) * std::sin(x[0]);
}

struct IshigamiTruth {
  // Analytic first-order indices for a=7, b=0.1.
  double s1 = 0.3139;
  double s2 = 0.4424;
  double s3 = 0.0;
  double st1 = 0.5576;
  double st3 = 0.2437;
};

std::vector<on::ParamRange> ishigami_ranges() {
  return {{"x1", -M_PI, M_PI}, {"x2", -M_PI, M_PI}, {"x3", -M_PI, M_PI}};
}

}  // namespace

TEST(Saltelli, ExactForLinearModel) {
  og::SobolIndices idx =
      og::saltelli_indices(og::ModelFn(linear_model), unit_ranges(3), 4096);
  EXPECT_NEAR(idx.first_order[0], 0.8, 0.02);
  EXPECT_NEAR(idx.first_order[1], 0.2, 0.02);
  EXPECT_NEAR(idx.first_order[2], 0.0, 0.02);
  EXPECT_NEAR(idx.total_order[0], 0.8, 0.02);
  EXPECT_NEAR(idx.total_order[2], 0.0, 0.02);
  EXPECT_EQ(idx.evaluations, 4096u * 5u);
  EXPECT_NEAR(idx.output_variance, 4.0 / 12.0 + 1.0 / 12.0, 0.01);
}

TEST(Saltelli, IshigamiMatchesAnalytic) {
  IshigamiTruth truth;
  og::SobolIndices idx =
      og::saltelli_indices(og::ModelFn(ishigami), ishigami_ranges(), 8192);
  EXPECT_NEAR(idx.first_order[0], truth.s1, 0.03);
  EXPECT_NEAR(idx.first_order[1], truth.s2, 0.03);
  EXPECT_NEAR(idx.first_order[2], truth.s3, 0.03);
  EXPECT_NEAR(idx.total_order[0], truth.st1, 0.03);
  EXPECT_NEAR(idx.total_order[2], truth.st3, 0.03);
  // Interactions: ST >= S1.
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_GE(idx.total_order[j], idx.first_order[j] - 0.03);
  }
}

TEST(Saltelli, ConstantModelGivesZeroIndices) {
  og::SobolIndices idx = og::saltelli_indices(
      og::ModelFn([](const on::Vector&) { return 5.0; }), unit_ranges(2),
      256);
  EXPECT_DOUBLE_EQ(idx.first_order[0], 0.0);
  EXPECT_DOUBLE_EQ(idx.total_order[1], 0.0);
  EXPECT_DOUBLE_EQ(idx.output_variance, 0.0);
}

TEST(Saltelli, BatchAndScalarAgree) {
  og::BatchModelFn batch = [](const on::Matrix& x) {
    on::Vector out(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i) out[i] = linear_model(x.row(i));
    return out;
  };
  og::SobolIndices a = og::saltelli_indices(batch, unit_ranges(3), 1024);
  og::SobolIndices b =
      og::saltelli_indices(og::ModelFn(linear_model), unit_ranges(3), 1024);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(a.first_order[j], b.first_order[j]);
  }
}

TEST(Saltelli, SubSquareKernelIsBitIdenticalToScalar) {
  // The Jansen estimator inner loop now runs on num::simd::sub_square;
  // the replicate fan-out is only allowed if the kernel is bitwise
  // identical to the scalar (a-b)^2 it replaced. Odd n covers the
  // vector tail path.
  for (std::size_t n : {1ull, 4ull, 7ull, 64ull, 129ull}) {
    std::vector<double> a(n), b(n), out(n, -1.0);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = std::sin(0.1 * static_cast<double>(i + 1)) * 1e3;
      b[i] = std::cos(0.3 * static_cast<double>(i)) / 7.0;
    }
    osprey::num::simd::sub_square(a.data(), b.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      double d = a[i] - b[i];
      ASSERT_EQ(out[i], d * d) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Saltelli, InputValidation) {
  EXPECT_THROW(
      og::saltelli_indices(og::ModelFn(linear_model), {}, 128),
      osprey::util::InvalidArgument);
  EXPECT_THROW(og::saltelli_indices(og::ModelFn(linear_model),
                                    unit_ranges(3), 2),
               osprey::util::InvalidArgument);
  // 2d > 10 exceeds the Sobol' table.
  EXPECT_THROW(og::saltelli_indices(og::ModelFn(linear_model),
                                    unit_ranges(6), 128),
               osprey::util::InvalidArgument);
}

TEST(Pce, ReproducesPolynomialExactly) {
  // y is itself degree-2: a degree-3 PCE with enough points must
  // reproduce it to machine precision.
  auto poly = [](const on::Vector& u) {
    return 1.0 + 2.0 * u[0] + 3.0 * u[1] * u[1];
  };
  on::RngStream rng(1);
  on::Matrix u = on::latin_hypercube(100, 2, rng);
  on::Vector y(100);
  for (std::size_t i = 0; i < 100; ++i) y[i] = poly(u.row(i));
  og::PceModel pce(u, y, og::PceConfig{3, 1e-12});
  for (std::size_t i = 0; i < 10; ++i) {
    on::Vector probe{rng.uniform(), rng.uniform()};
    EXPECT_NEAR(pce.predict(probe), poly(probe), 1e-8);
  }
}

TEST(Pce, SobolOfAdditiveModel) {
  og::SobolIndices idx = og::pce_gsa(og::ModelFn(linear_model),
                                     unit_ranges(3), 200, 7);
  EXPECT_NEAR(idx.first_order[0], 0.8, 0.02);
  EXPECT_NEAR(idx.first_order[1], 0.2, 0.02);
  EXPECT_NEAR(idx.first_order[2], 0.0, 0.02);
  EXPECT_EQ(idx.evaluations, 200u);
}

TEST(Pce, InteractionShowsInTotalOrder) {
  // y = x0 * x1 (centered inputs): pure interaction terms exist.
  auto prod = [](const on::Vector& x) {
    return (x[0] - 0.5) * (x[1] - 0.5);
  };
  og::SobolIndices idx =
      og::pce_gsa(og::ModelFn(prod), unit_ranges(2), 300, 11);
  // First-order indices ~0; total order ~1 for both.
  EXPECT_NEAR(idx.first_order[0], 0.0, 0.05);
  EXPECT_NEAR(idx.total_order[0], 1.0, 0.05);
  EXPECT_NEAR(idx.total_order[1], 1.0, 0.05);
}

TEST(Pce, NumTermsMatchesTotalDegree) {
  on::RngStream rng(2);
  on::Matrix u = on::latin_hypercube(100, 5, rng);
  on::Vector y(100, 1.0);
  og::PceModel pce(u, y, og::PceConfig{3, 1e-8});
  EXPECT_EQ(pce.num_terms(), 56u);  // C(5+3, 3)
}

TEST(Pce, UnderdeterminedFitIsNoisyButFinite) {
  // n=20 < 56 terms: the ridge keeps it finite (the paper's "limitations
  // of one-shot approaches" at small budgets).
  og::SobolIndices idx = og::pce_gsa(og::ModelFn(linear_model),
                                     unit_ranges(3), 20, 3,
                                     og::PceConfig{3, 1e-6});
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_TRUE(std::isfinite(idx.first_order[j]));
  }
}

TEST(Pce, DegreeThreeBeatsDegreeOneOnCurvedModel) {
  auto curved = [](const on::Vector& u) {
    return std::sin(2.5 * u[0]) + u[1];
  };
  on::RngStream rng(4);
  on::Matrix u = on::latin_hypercube(120, 2, rng);
  on::Vector y(120);
  for (std::size_t i = 0; i < 120; ++i) y[i] = curved(u.row(i));
  og::PceModel deg1(u, y, og::PceConfig{1, 1e-10});
  og::PceModel deg3(u, y, og::PceConfig{3, 1e-10});
  double err1 = 0.0, err3 = 0.0;
  for (int i = 0; i < 50; ++i) {
    on::Vector probe{rng.uniform(), rng.uniform()};
    err1 += std::fabs(deg1.predict(probe) - curved(probe));
    err3 += std::fabs(deg3.predict(probe) - curved(probe));
  }
  EXPECT_LT(err3, 0.5 * err1);
}
