#include "emews/interleave.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "emews/task_api.hpp"
#include "emews/worker_pool.hpp"
#include "util/error.hpp"

namespace oe = osprey::emews;
namespace ou = osprey::util;
using ou::Value;
using ou::ValueObject;

namespace {

/// A miniature MUSIC-shaped cooperative algorithm: submits a batch,
/// waits for all futures (one poll check at a time), then submits single
/// tasks for `n_iterations` refinement rounds.
class BatchThenSingles final : public oe::CoopAlgorithm {
 public:
  BatchThenSingles(std::string name, oe::TaskQueue queue,
                   std::size_t batch_size, std::size_t n_iterations)
      : name_(std::move(name)),
        queue_(std::move(queue)),
        batch_size_(batch_size),
        remaining_iterations_(n_iterations) {}

  std::string name() const override { return name_; }

  void start() override {
    for (std::size_t i = 0; i < batch_size_; ++i) {
      pending_.push_back(queue_.submit(Value(ValueObject{})));
    }
  }

  oe::PollResult poll() override {
    ++polls_;
    if (pending_.empty()) return oe::PollResult::kFinished;
    // Check exactly one future.
    if (!pending_[cursor_ % pending_.size()].is_done()) {
      ++cursor_;
      return oe::PollResult::kBlocked;
    }
    pending_.erase(pending_.begin() +
                   static_cast<std::ptrdiff_t>(cursor_ % pending_.size()));
    results_collected_++;
    if (pending_.empty()) {
      if (remaining_iterations_ > 0) {
        --remaining_iterations_;
        pending_.push_back(queue_.submit(Value(ValueObject{})));
      } else {
        return oe::PollResult::kFinished;
      }
    }
    return oe::PollResult::kProgress;
  }

  std::size_t results_collected() const { return results_collected_; }
  std::size_t polls() const { return polls_; }

 private:
  std::string name_;
  oe::TaskQueue queue_;
  std::size_t batch_size_;
  std::size_t remaining_iterations_;
  std::vector<oe::TaskFuture> pending_;
  std::size_t cursor_ = 0;
  std::size_t results_collected_ = 0;
  std::size_t polls_ = 0;
};

Value slow_model(const Value&) {
  std::this_thread::sleep_for(std::chrono::microseconds(300));
  return Value(ValueObject{});
}

}  // namespace

TEST(Interleave, SingleInstanceCompletes) {
  oe::TaskDb db;
  oe::WorkerPool pool(db, "t", slow_model, 2);
  oe::InterleavedDriver driver(db);
  auto algo = std::make_shared<BatchThenSingles>("a", oe::TaskQueue(db, "t"),
                                                 4, 3);
  driver.add(algo);
  driver.run();
  EXPECT_EQ(algo->results_collected(), 4u + 3u);
  pool.shutdown();
}

TEST(Interleave, ManyInstancesAllComplete) {
  oe::TaskDb db;
  oe::WorkerPool pool(db, "t", slow_model, 3);
  oe::InterleavedDriver driver(db);
  std::vector<std::shared_ptr<BatchThenSingles>> algos;
  for (int i = 0; i < 10; ++i) {
    algos.push_back(std::make_shared<BatchThenSingles>(
        "inst" + std::to_string(i), oe::TaskQueue(db, "t"), 5, 4));
    driver.add(algos.back());
  }
  driver.run();
  for (const auto& a : algos) {
    EXPECT_EQ(a->results_collected(), 9u);
  }
  pool.shutdown();
  EXPECT_EQ(pool.tasks_evaluated(), 10u * 9u);
  EXPECT_GT(driver.total_polls(), 0u);
}

TEST(Interleave, DriverSleepsInsteadOfSpinning) {
  oe::TaskDb db;
  // Slow model: each evaluation takes ~20 ms, so a spinning driver would
  // rack up enormous poll counts; the condition-variable sleep bounds it.
  oe::WorkerPool pool(db, "t",
                      [](const Value&) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(20));
                        return Value(ValueObject{});
                      },
                      1);
  oe::InterleavedDriver driver(db);
  auto algo = std::make_shared<BatchThenSingles>("a", oe::TaskQueue(db, "t"),
                                                 2, 2);
  driver.add(algo);
  driver.run();
  pool.shutdown();
  EXPECT_GT(driver.blocked_waits(), 0u);
  EXPECT_LT(driver.total_polls(), 1000u);
}

TEST(Interleave, SequentialDriverAlsoCompletes) {
  oe::TaskDb db;
  oe::WorkerPool pool(db, "t", slow_model, 2);
  oe::SequentialDriver driver(db);
  std::vector<std::shared_ptr<BatchThenSingles>> algos;
  for (int i = 0; i < 4; ++i) {
    algos.push_back(std::make_shared<BatchThenSingles>(
        "seq" + std::to_string(i), oe::TaskQueue(db, "t"), 3, 2));
    driver.add(algos.back());
  }
  driver.run();
  for (const auto& a : algos) EXPECT_EQ(a->results_collected(), 5u);
  pool.shutdown();
}

TEST(Interleave, EmptyDriverThrows) {
  oe::TaskDb db;
  oe::InterleavedDriver driver(db);
  EXPECT_THROW(driver.run(), ou::InvalidArgument);
  oe::SequentialDriver seq(db);
  EXPECT_THROW(seq.run(), ou::InvalidArgument);
}

TEST(Interleave, NullAlgorithmRejected) {
  oe::TaskDb db;
  oe::InterleavedDriver driver(db);
  EXPECT_THROW(driver.add(nullptr), ou::InvalidArgument);
}
