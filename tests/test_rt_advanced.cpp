/// Tests for the second-tier R(t) estimator (deconvolution + Cori), the
/// forecaster, and the GP leave-one-out diagnostics.

#include <gtest/gtest.h>

#include <cmath>

#include "epi/kernels.hpp"
#include "epi/wastewater.hpp"
#include "gp/gp.hpp"
#include "num/sampling.hpp"
#include "num/stats.hpp"
#include "rt/deconvolution.hpp"
#include "rt/forecast.hpp"
#include "rt/goldstein.hpp"
#include "util/error.hpp"

namespace oe = osprey::epi;
namespace og = osprey::gp;
namespace on = osprey::num;
namespace ort = osprey::rt;

TEST(RichardsonLucy, RecoversKnownSource) {
  // source -> conv with shedding-like kernel -> deconvolve -> source.
  std::vector<double> kernel = oe::discretized_gamma(4.0, 2.0, 10);
  std::vector<double> source(60, 0.0);
  for (int t = 0; t < 60; ++t) {
    source[static_cast<std::size_t>(t)] =
        100.0 + 80.0 * std::sin(2.0 * M_PI * t / 30.0);
  }
  std::vector<double> observed(60, 0.0);
  for (std::size_t t = 0; t < 60; ++t) {
    for (std::size_t s = 0; s < kernel.size() && s <= t; ++s) {
      observed[t] += kernel[s] * source[t - s];
    }
  }
  std::vector<double> recovered = ort::richardson_lucy(observed, kernel, 50);
  // Interior recovery within ~15% (edges are ill-posed).
  for (std::size_t t = 15; t < 50; ++t) {
    EXPECT_NEAR(recovered[t], source[t], 0.15 * source[t]) << t;
  }
}

TEST(RichardsonLucy, NonNegativeAndValidates) {
  std::vector<double> observed{1.0, 0.0, 2.0, 0.5};
  std::vector<double> kernel{0.5, 0.5};
  auto rec = ort::richardson_lucy(observed, kernel, 10);
  for (double v : rec) EXPECT_GE(v, 0.0);
  EXPECT_THROW(ort::richardson_lucy({}, kernel, 5),
               osprey::util::InvalidArgument);
  EXPECT_THROW(ort::richardson_lucy(observed, {-1.0}, 5),
               osprey::util::InvalidArgument);
  EXPECT_THROW(ort::richardson_lucy(observed, kernel, 0),
               osprey::util::InvalidArgument);
}

TEST(DeconvolutionRt, BetterThanNaiveOnSyntheticPlant) {
  oe::Plant plant = oe::chicago_plants()[0];
  oe::WastewaterConfig cfg;
  cfg.days = 110;
  oe::WastewaterGenerator gen(plant, oe::chicago_truths()[0], cfg, 31);
  std::vector<double> truth = gen.true_rt();
  truth.resize(110);

  ort::DeconvolutionResult deconv =
      ort::estimate_rt_deconvolution(gen.samples(), 110);
  ort::CoriResult naive =
      ort::estimate_cori_from_concentration(gen.samples(), 110);

  auto mid = [](const std::vector<double>& v) {
    return std::vector<double>(v.begin() + 25, v.end() - 10);
  };
  double deconv_rmse = on::rmse(mid(deconv.rt.series.median), mid(truth));
  double naive_rmse = on::rmse(mid(naive.series.median), mid(truth));
  // Correcting for the shedding delay must help.
  EXPECT_LT(deconv_rmse, naive_rmse);
  EXPECT_LT(deconv_rmse, 0.2);
  // The incidence proxy correlates with the true incidence.
  std::vector<double> inc = gen.incidence();
  inc.resize(110);
  EXPECT_GT(on::correlation(mid(deconv.incidence_proxy), mid(inc)), 0.7);
}

TEST(DeconvolutionRt, Validation) {
  std::vector<oe::WwSample> one{{0, 1.0}};
  EXPECT_THROW(ort::estimate_rt_deconvolution(one, 10),
               osprey::util::InvalidArgument);
}

TEST(Forecast, FlatRHoldsIncidenceSteady) {
  // Posterior concentrated at R = 1 and flat history: the projected
  // incidence stays near the recent level.
  ort::RtPosterior posterior;
  posterior.draws = on::Matrix(50, 30, 1.0);
  std::vector<double> history(20, 200.0);
  ort::ForecastConfig cfg;
  cfg.horizon_days = 21;
  cfg.log_rt_daily_sd = 0.0;  // no innovation: deterministic hold
  ort::Forecast fc = ort::forecast_incidence(posterior, history, cfg);
  ASSERT_EQ(fc.median.size(), 21u);
  for (double v : fc.median) {
    EXPECT_NEAR(v, 200.0, 20.0);
  }
}

TEST(Forecast, GrowthWhenRAboveOne) {
  ort::RtPosterior posterior;
  posterior.draws = on::Matrix(50, 30, 1.4);
  std::vector<double> history(20, 100.0);
  ort::ForecastConfig cfg;
  cfg.horizon_days = 21;
  cfg.reversion_rate = 0.0;
  cfg.log_rt_daily_sd = 0.0;
  ort::Forecast fc = ort::forecast_incidence(posterior, history, cfg);
  EXPECT_GT(fc.median.back(), 2.0 * fc.median.front());
  EXPECT_NEAR(fc.rt_median.back(), 1.4, 0.01);
}

TEST(Forecast, UncertaintyWidensWithLeadTime) {
  ort::RtPosterior posterior;
  posterior.draws = on::Matrix(200, 30, 1.0);
  std::vector<double> history(20, 100.0);
  ort::ForecastConfig cfg;
  cfg.horizon_days = 28;
  cfg.log_rt_daily_sd = 0.05;
  ort::Forecast fc = ort::forecast_incidence(posterior, history, cfg);
  double early_width = fc.hi95[2] - fc.lo95[2];
  double late_width = fc.hi95[27] - fc.lo95[27];
  EXPECT_GT(late_width, 2.0 * early_width);
}

TEST(Forecast, EndToEndFromGoldsteinPosterior) {
  oe::Plant plant = oe::chicago_plants()[0];
  oe::WastewaterConfig cfg;
  cfg.days = 80;
  oe::WastewaterGenerator gen(plant, oe::chicago_truths()[0], cfg, 3);
  ort::GoldsteinConfig gconf;
  gconf.iterations = 800;
  gconf.burnin = 400;
  gconf.flow_liters_per_day = plant.avg_flow_mgd * 3.785e6;
  ort::GoldsteinEstimator estimator(gconf);
  ort::RtPosterior posterior = estimator.estimate(gen.samples(), 80);
  std::vector<double> history(gen.incidence().begin(),
                              gen.incidence().begin() + 80);
  ort::Forecast fc = ort::forecast_incidence(posterior, history);
  ASSERT_EQ(fc.median.size(), 28u);
  for (std::size_t t = 0; t < fc.median.size(); ++t) {
    EXPECT_GE(fc.median[t], 0.0);
    EXPECT_LE(fc.lo95[t], fc.median[t]);
    EXPECT_GE(fc.hi95[t], fc.median[t]);
  }
}

TEST(Forecast, Validation) {
  ort::RtPosterior posterior;
  posterior.draws = on::Matrix(10, 5, 1.0);
  std::vector<double> short_history(3, 10.0);  // < generation interval
  EXPECT_THROW(ort::forecast_incidence(posterior, short_history),
               osprey::util::InvalidArgument);
}

TEST(GpLoo, SmallErrorOnSmoothFunction) {
  on::RngStream rng(4);
  const std::size_t n = 60;
  on::Matrix x = on::latin_hypercube(n, 2, rng);
  on::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = std::sin(3.0 * x(i, 0)) + x(i, 1);
  }
  og::GaussianProcess gp;
  gp.fit(x, y);
  og::GaussianProcess::LooDiagnostics loo = gp.leave_one_out();
  EXPECT_EQ(loo.residuals.size(), n);
  EXPECT_LT(loo.rmse, 0.05);
  EXPECT_GT(loo.coverage95, 0.8);
}

TEST(GpLoo, DetectsMisfitOnNoise) {
  // Pure noise: LOO RMSE should be about the noise scale, not tiny.
  on::RngStream rng(5);
  const std::size_t n = 60;
  on::Matrix x = on::latin_hypercube(n, 2, rng);
  on::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = rng.normal();
  og::GaussianProcess gp;
  gp.fit(x, y);
  og::GaussianProcess::LooDiagnostics loo = gp.leave_one_out();
  EXPECT_GT(loo.rmse, 0.5);
}

TEST(GpLoo, MatchesExplicitRefits) {
  // Closed-form LOO must agree with the brute-force leave-one-out fit
  // (same hyperparameters).
  on::RngStream rng(6);
  const std::size_t n = 20;
  on::Matrix x = on::latin_hypercube(n, 1, rng);
  on::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = std::cos(4.0 * x(i, 0));
  og::GpConfig cfg;
  cfg.mle_restarts = 0;
  og::GaussianProcess gp(cfg);
  gp.fit(x, y);
  og::GaussianProcess::LooDiagnostics loo = gp.leave_one_out();

  for (std::size_t drop : {std::size_t{0}, std::size_t{7}, std::size_t{19}}) {
    on::Matrix x2(n - 1, 1);
    on::Vector y2;
    std::size_t row = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == drop) continue;
      x2(row, 0) = x(i, 0);
      y2.push_back(y[i]);
      ++row;
    }
    // Same hyperparameters, explicit refit without point `drop`.
    og::GaussianProcess gp2(cfg);
    gp2.update_data(x, y);  // dummy to size internals
    gp2 = gp;               // copy hyperparameters + data
    gp2.update_data(x2, y2);
    double pred = gp2.predict(x.row(drop)).mean;
    EXPECT_NEAR(y[drop] - pred, loo.residuals[drop], 1e-6) << drop;
  }
}
