/// Tests for the extension features: provenance lineage queries, the
/// naive Cori-on-concentration baseline, MUSIC total-order trajectories
/// and alternative acquisition functions.

#include <gtest/gtest.h>

#include <cmath>

#include "aero/metadata_db.hpp"
#include "epi/wastewater.hpp"
#include "gsa/music.hpp"
#include "num/stats.hpp"
#include "rt/cori.hpp"
#include "util/error.hpp"

namespace oa = osprey::aero;
namespace oe = osprey::epi;
namespace og = osprey::gsa;
namespace on = osprey::num;
namespace ort = osprey::rt;

namespace {

/// Build the Figure-1-shaped provenance graph:
///   raw_a -> run0 -> out_a ─┐
///   raw_b -> run1 -> out_b ─┴-> run2 -> agg
struct Graph {
  oa::MetadataDb db;
  std::string raw_a, out_a, raw_b, out_b, agg;
};

Graph make_graph() {
  Graph g;
  g.raw_a = g.db.register_object("raw-a", "");
  g.out_a = g.db.register_object("out-a", "ing-a");
  g.raw_b = g.db.register_object("raw-b", "");
  g.out_b = g.db.register_object("out-b", "ing-b");
  g.agg = g.db.register_object("agg", "aggregate");
  for (const std::string* u : {&g.raw_a, &g.out_a, &g.raw_b, &g.out_b, &g.agg}) {
    g.db.add_version(*u, "c", 1, 0, "e", "c", "p");
  }
  std::uint64_t r0 = g.db.start_run("ing-a", oa::FlowKind::kIngestion, "t",
                                    {{g.raw_a, 1}}, "ep", 0);
  g.db.finish_run(r0, oa::RunStatus::kSucceeded, {{g.out_a, 1}}, 1);
  std::uint64_t r1 = g.db.start_run("ing-b", oa::FlowKind::kIngestion, "t",
                                    {{g.raw_b, 1}}, "ep", 0);
  g.db.finish_run(r1, oa::RunStatus::kSucceeded, {{g.out_b, 1}}, 1);
  std::uint64_t r2 = g.db.start_run("aggregate", oa::FlowKind::kAnalysis, "t",
                                    {{g.out_a, 1}, {g.out_b, 1}}, "ep", 2);
  g.db.finish_run(r2, oa::RunStatus::kSucceeded, {{g.agg, 1}}, 3);
  return g;
}

bool contains(const std::vector<std::string>& xs, const std::string& x) {
  for (const auto& v : xs) {
    if (v == x) return true;
  }
  return false;
}

}  // namespace

TEST(Lineage, UpstreamWalksToTheRoots) {
  Graph g = make_graph();
  auto lineage = g.db.upstream_lineage(g.agg);
  EXPECT_EQ(lineage.object_uuids.size(), 5u);  // everything feeds agg
  EXPECT_TRUE(contains(lineage.object_uuids, g.raw_a));
  EXPECT_TRUE(contains(lineage.object_uuids, g.raw_b));
  EXPECT_EQ(lineage.run_ids.size(), 3u);
}

TEST(Lineage, UpstreamOfIntermediateStopsThere) {
  Graph g = make_graph();
  auto lineage = g.db.upstream_lineage(g.out_a);
  EXPECT_EQ(lineage.object_uuids.size(), 2u);  // out_a + raw_a
  EXPECT_TRUE(contains(lineage.object_uuids, g.raw_a));
  EXPECT_FALSE(contains(lineage.object_uuids, g.raw_b));
  EXPECT_EQ(lineage.run_ids.size(), 1u);
}

TEST(Lineage, DownstreamAnswersImpactQuestion) {
  Graph g = make_graph();
  // If raw_a was bad, out_a and agg must be recomputed — but not out_b.
  auto impact = g.db.downstream_lineage(g.raw_a);
  EXPECT_TRUE(contains(impact.object_uuids, g.out_a));
  EXPECT_TRUE(contains(impact.object_uuids, g.agg));
  EXPECT_FALSE(contains(impact.object_uuids, g.out_b));
  EXPECT_EQ(impact.run_ids.size(), 2u);
}

TEST(Lineage, LeafHasTrivialDownstream) {
  Graph g = make_graph();
  auto impact = g.db.downstream_lineage(g.agg);
  EXPECT_EQ(impact.object_uuids.size(), 1u);
  EXPECT_TRUE(impact.run_ids.empty());
}

TEST(Lineage, UnknownObjectThrows) {
  Graph g = make_graph();
  EXPECT_THROW(g.db.upstream_lineage("nope"), osprey::util::NotFound);
  EXPECT_THROW(g.db.downstream_lineage("nope"), osprey::util::NotFound);
}

TEST(NaiveCori, RunsOnSparseSamplesAndIsWorseThanNothingSpecial) {
  oe::Plant plant = oe::chicago_plants()[0];
  oe::WastewaterConfig cfg;
  cfg.days = 100;
  oe::WastewaterGenerator gen(plant, oe::chicago_truths()[0], cfg, 9);
  ort::CoriResult naive =
      ort::estimate_cori_from_concentration(gen.samples(), 100);
  EXPECT_EQ(naive.series.days(), 100u);
  // Still produces a bounded, positive R(t) series.
  for (std::size_t t = 20; t < 100; ++t) {
    EXPECT_GT(naive.series.median[t], 0.0);
    EXPECT_LT(naive.series.median[t], 5.0);
  }
  // It correlates with the truth (the signal is there) ...
  std::vector<double> truth = gen.true_rt();
  truth.resize(100);
  std::vector<double> est_mid(naive.series.median.begin() + 20,
                              naive.series.median.end() - 10);
  std::vector<double> truth_mid(truth.begin() + 20, truth.end() - 10);
  EXPECT_GT(on::correlation(est_mid, truth_mid), 0.3);
}

TEST(NaiveCori, InputValidation) {
  std::vector<oe::WwSample> one{{0, 1.0}};
  EXPECT_THROW(ort::estimate_cori_from_concentration(one, 10),
               osprey::util::InvalidArgument);
  std::vector<oe::WwSample> two{{0, 1.0}, {50, 1.0}};
  EXPECT_THROW(ort::estimate_cori_from_concentration(two, 40),
               osprey::util::InvalidArgument);  // horizon before last sample
}

TEST(MusicTotalOrder, RecordedAlongsideFirstOrder) {
  og::MusicConfig cfg;
  cfg.ranges = {{"a", 0.0, 1.0}, {"b", 0.0, 1.0}};
  cfg.n_init = 8;
  cfg.n_total = 14;
  cfg.n_candidates = 40;
  cfg.surrogate_mc_n = 512;
  cfg.gp.mle_restarts = 0;
  // Interaction model: ST should exceed S1.
  og::MusicResult result = og::run_music(cfg, [](const on::Vector& x) {
    return (x[0] - 0.5) * (x[1] - 0.5) + 0.3 * x[0];
  });
  for (const auto& step : result.trajectory) {
    ASSERT_EQ(step.st.size(), 2u);
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_GE(step.st[j], step.s1[j] - 0.1);
    }
  }
  // Dimension 1 is interaction-only: S1 ~ 0 but ST clearly positive.
  const auto& last = result.trajectory.back();
  EXPECT_GT(last.st[1], last.s1[1] + 0.1);
}

TEST(Acquisitions, AllVariantsCompleteAndRecover) {
  // Exact S1 = (0.8, 0.2) for y = 2 x0 + x1.
  for (og::Acquisition acq :
       {og::Acquisition::kEigf, og::Acquisition::kVariance,
        og::Acquisition::kEi, og::Acquisition::kUcb,
        og::Acquisition::kRandom}) {
    og::MusicConfig cfg;
    cfg.ranges = {{"a", 0.0, 1.0}, {"b", 0.0, 1.0}};
    cfg.n_init = 8;
    cfg.n_total = 20;
    cfg.n_candidates = 40;
    cfg.surrogate_mc_n = 512;
    cfg.gp.mle_restarts = 0;
    cfg.acquisition = acq;
    og::MusicResult result = og::run_music(cfg, [](const on::Vector& x) {
      return 2.0 * x[0] + x[1];
    });
    EXPECT_EQ(result.evaluations, 20u) << og::acquisition_name(acq);
    EXPECT_NEAR(result.final_s1[0], 0.8, 0.1) << og::acquisition_name(acq);
    EXPECT_NEAR(result.final_s1[1], 0.2, 0.1) << og::acquisition_name(acq);
  }
}

TEST(Acquisitions, NamesAreDistinct) {
  std::set<std::string> names;
  for (og::Acquisition acq :
       {og::Acquisition::kEigf, og::Acquisition::kVariance,
        og::Acquisition::kEi, og::Acquisition::kUcb,
        og::Acquisition::kRandom}) {
    names.insert(og::acquisition_name(acq));
  }
  EXPECT_EQ(names.size(), 5u);
}
