#include "gsa/music.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/music_coop.hpp"
#include "emews/worker_pool.hpp"
#include "util/error.hpp"

namespace og = osprey::gsa;
namespace on = osprey::num;
namespace oe = osprey::emews;

namespace {

double additive_model(const on::Vector& x) {
  // On the box below, exact S1 = (0.64, 0.32, 0.04) / 1.0 style ratios:
  // variances: (2a)^2/12 per coefficient a and unit widths.
  return 4.0 * x[0] + 2.0 * x[1] + 1.0 * x[2];
}

std::vector<on::ParamRange> unit_ranges3() {
  return {{"a", 0.0, 1.0}, {"b", 0.0, 1.0}, {"c", 0.0, 1.0}};
}

og::MusicConfig fast_config() {
  og::MusicConfig cfg;
  cfg.ranges = unit_ranges3();
  cfg.n_init = 10;
  cfg.n_total = 30;
  cfg.n_candidates = 60;
  cfg.surrogate_mc_n = 512;
  cfg.reopt_every = 10;
  cfg.gp.mle_restarts = 1;
  cfg.gp.mle_max_iterations = 80;
  cfg.seed = 5;
  return cfg;
}

}  // namespace

TEST(MusicEngine, InitialDesignShapeAndRange) {
  og::MusicEngine engine(fast_config());
  on::Matrix design = engine.initial_design_box();
  EXPECT_EQ(design.rows(), 10u);
  EXPECT_EQ(design.cols(), 3u);
  for (std::size_t i = 0; i < design.rows(); ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_GE(design(i, j), 0.0);
      EXPECT_LE(design(i, j), 1.0);
    }
  }
}

TEST(MusicEngine, AdvanceBeforeDesignThrows) {
  og::MusicEngine engine(fast_config());
  EXPECT_THROW(engine.advance(), osprey::util::InvalidArgument);
}

TEST(MusicEngine, BudgetRespectedAndTrajectoryRecorded) {
  og::MusicResult result =
      og::run_music(fast_config(), og::ModelFn(additive_model));
  EXPECT_EQ(result.evaluations, 30u);
  // One record per advance: at n = 10, 11, ..., 30.
  EXPECT_EQ(result.trajectory.size(), 21u);
  EXPECT_EQ(result.trajectory.front().n, 10u);
  EXPECT_EQ(result.trajectory.back().n, 30u);
  EXPECT_EQ(result.final_s1.size(), 3u);
  EXPECT_EQ(result.y.size(), 30u);
}

TEST(MusicEngine, RecoversAdditiveIndices) {
  // Exact S1 for (4, 2, 1) coefficients: 16/21, 4/21, 1/21.
  og::MusicConfig cfg = fast_config();
  cfg.n_total = 40;
  og::MusicResult result =
      og::run_music(cfg, og::ModelFn(additive_model));
  EXPECT_NEAR(result.final_s1[0], 16.0 / 21.0, 0.08);
  EXPECT_NEAR(result.final_s1[1], 4.0 / 21.0, 0.08);
  EXPECT_NEAR(result.final_s1[2], 1.0 / 21.0, 0.06);
}

TEST(MusicEngine, DeterministicPerSeed) {
  og::MusicResult a = og::run_music(fast_config(), og::ModelFn(additive_model));
  og::MusicResult b = og::run_music(fast_config(), og::ModelFn(additive_model));
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (std::size_t r = 0; r < a.trajectory.size(); ++r) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(a.trajectory[r].s1[j], b.trajectory[r].s1[j]);
    }
  }
}

TEST(MusicEngine, AcquisitionTargetsLeastKnownRegions) {
  // After the initial design, acquired points should not duplicate
  // existing design points (EIGF's variance term repels duplicates).
  og::MusicConfig cfg = fast_config();
  cfg.n_total = 20;
  og::MusicResult result = og::run_music(cfg, og::ModelFn(additive_model));
  for (std::size_t i = cfg.n_init; i < result.x_box.rows(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      double dist = 0.0;
      for (std::size_t c = 0; c < 3; ++c) {
        double d = result.x_box(i, c) - result.x_box(j, c);
        dist += d * d;
      }
      EXPECT_GT(std::sqrt(dist), 1e-4)
          << "acquired point " << i << " duplicates " << j;
    }
  }
}

TEST(MusicEngine, StabilizationDetection) {
  std::vector<og::MusicStep> trajectory;
  // Indices wobble until n=15, then settle.
  for (std::size_t n = 10; n <= 30; ++n) {
    double wobble = n < 15 ? 0.3 : 0.001;
    trajectory.push_back(
        og::MusicStep{n, {0.5 + (n % 2 ? wobble : -wobble), 0.3}, {}});
  }
  EXPECT_EQ(og::stabilization_n(trajectory, 0.05), 15u);
  // Never-stable trajectory returns the last n.
  std::vector<og::MusicStep> wobbly;
  for (std::size_t n = 10; n <= 20; ++n) {
    wobbly.push_back(og::MusicStep{n, {n % 2 ? 0.9 : 0.1}, {}});
  }
  EXPECT_EQ(og::stabilization_n(wobbly, 0.05), 20u);
}

TEST(MusicEngine, ConfigValidation) {
  og::MusicConfig cfg = fast_config();
  cfg.ranges.clear();
  EXPECT_THROW(og::MusicEngine{cfg}, osprey::util::InvalidArgument);
  cfg = fast_config();
  cfg.n_total = 5;  // < n_init
  EXPECT_THROW(og::MusicEngine{cfg}, osprey::util::InvalidArgument);
}

TEST(MusicCoop, RunsOverEmewsQueue) {
  oe::TaskDb db;
  oe::ModelFn model = [](const osprey::util::Value& payload) {
    on::Vector x = payload.at("x").to_doubles();
    osprey::util::ValueObject out;
    out["y"] = osprey::util::Value(additive_model(x));
    return osprey::util::Value(std::move(out));
  };
  oe::WorkerPool pool(db, "m", model, 2);
  oe::InterleavedDriver driver(db);
  auto coop = std::make_shared<osprey::core::MusicCoop>(
      "coop0", oe::TaskQueue(db, "m"), fast_config(), 0);
  driver.add(coop);
  driver.run();
  EXPECT_TRUE(coop->finished());
  og::MusicResult result = coop->result();
  EXPECT_EQ(result.evaluations, 30u);
  EXPECT_NEAR(result.final_s1[0], 16.0 / 21.0, 0.1);
  pool.shutdown();
}

TEST(MusicCoop, MatchesSynchronousRun) {
  // The cooperative EMEWS path must produce the same trajectory as the
  // synchronous driver (same seed, deterministic model).
  og::MusicResult sync =
      og::run_music(fast_config(), og::ModelFn(additive_model));

  oe::TaskDb db;
  oe::ModelFn model = [](const osprey::util::Value& payload) {
    on::Vector x = payload.at("x").to_doubles();
    osprey::util::ValueObject out;
    out["y"] = osprey::util::Value(additive_model(x));
    return osprey::util::Value(std::move(out));
  };
  oe::WorkerPool pool(db, "m", model, 1);
  oe::InterleavedDriver driver(db);
  auto coop = std::make_shared<osprey::core::MusicCoop>(
      "coop0", oe::TaskQueue(db, "m"), fast_config(), 0);
  driver.add(coop);
  driver.run();
  pool.shutdown();
  og::MusicResult async = coop->result();

  ASSERT_EQ(async.trajectory.size(), sync.trajectory.size());
  for (std::size_t r = 0; r < sync.trajectory.size(); ++r) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(async.trajectory[r].s1[j], sync.trajectory[r].s1[j], 1e-9);
    }
  }
}

TEST(MusicCoop, ReplicateCarriedInPayload) {
  oe::TaskDb db;
  std::atomic<std::int64_t> seen_replicate{-1};
  oe::ModelFn model = [&seen_replicate](const osprey::util::Value& payload) {
    seen_replicate = payload.at("replicate").as_int();
    osprey::util::ValueObject out;
    out["y"] = osprey::util::Value(1.0 + payload.at("x").to_doubles()[0]);
    return osprey::util::Value(std::move(out));
  };
  oe::WorkerPool pool(db, "m", model, 1);
  og::MusicConfig cfg = fast_config();
  cfg.n_total = cfg.n_init;  // initial design only
  oe::InterleavedDriver driver(db);
  auto coop = std::make_shared<osprey::core::MusicCoop>(
      "coop7", oe::TaskQueue(db, "m"), cfg, 7);
  driver.add(coop);
  driver.run();
  pool.shutdown();
  EXPECT_EQ(seen_replicate.load(), 7);
  EXPECT_EQ(coop->replicate(), 7u);
}
