#include "epi/wastewater.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "crypto/sha256.hpp"
#include "num/stats.hpp"
#include "util/csv.hpp"

namespace oe = osprey::epi;

namespace {

oe::WastewaterGenerator make_gen(std::uint64_t seed = 1) {
  return oe::WastewaterGenerator(oe::chicago_plants()[0],
                                 oe::chicago_truths()[0],
                                 oe::WastewaterConfig{}, seed);
}

}  // namespace

TEST(Wastewater, FourChicagoPlantsWithPopulations) {
  auto plants = oe::chicago_plants();
  ASSERT_EQ(plants.size(), 4u);
  EXPECT_EQ(plants[0].name, "O'Brien");
  EXPECT_EQ(plants[1].name, "Calumet");
  EXPECT_EQ(plants[2].name, "Stickney South");
  EXPECT_EQ(plants[3].name, "Stickney North");
  for (const auto& p : plants) {
    EXPECT_GT(p.population_served, 500'000);
    EXPECT_GT(p.avg_flow_mgd, 0.0);
  }
  EXPECT_EQ(oe::chicago_truths().size(), 4u);
}

TEST(Wastewater, TruthRtInPlausibleRange) {
  auto gen = make_gen();
  EXPECT_EQ(gen.true_rt().size(), 120u);
  for (double r : gen.true_rt()) {
    EXPECT_GT(r, 0.4);
    EXPECT_LT(r, 2.5);
  }
}

TEST(Wastewater, IncidenceRespondsToRt) {
  // With R(t) > 1 sustained, incidence grows; the default truth wave
  // starts above 1, so early incidence trends upward on average.
  auto gen = make_gen(3);
  const auto& inc = gen.incidence();
  double early = 0.0, later = 0.0;
  for (int t = 0; t < 20; ++t) early += inc[static_cast<std::size_t>(t)];
  for (int t = 30; t < 50; ++t) later += inc[static_cast<std::size_t>(t)];
  EXPECT_GT(gen.true_rt()[10], 1.0);
  EXPECT_GT(later, early);
}

TEST(Wastewater, SamplesFollowMonWedFriCadence) {
  auto gen = make_gen();
  for (const auto& s : gen.samples()) {
    int weekday = s.day % 7;
    EXPECT_TRUE(weekday == 0 || weekday == 2 || weekday == 4)
        << "day " << s.day;
    EXPECT_GT(s.concentration, 0.0);
  }
  // ~3 samples per week over 120 days.
  EXPECT_NEAR(static_cast<double>(gen.samples().size()), 120.0 * 3 / 7, 4.0);
}

TEST(Wastewater, SamplesTrackLatentConcentration) {
  auto gen = make_gen(5);
  std::vector<double> obs, latent;
  for (const auto& s : gen.samples()) {
    obs.push_back(std::log(s.concentration));
    latent.push_back(
        std::log(gen.latent_concentration()[static_cast<std::size_t>(s.day)]));
  }
  EXPECT_GT(osprey::num::correlation(obs, latent), 0.9);
}

TEST(Wastewater, DeterministicPerSeed) {
  auto a = make_gen(7);
  auto b = make_gen(7);
  auto c = make_gen(8);
  EXPECT_EQ(a.samples().size(), b.samples().size());
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples()[i].concentration,
                     b.samples()[i].concentration);
  }
  EXPECT_NE(a.samples()[5].concentration, c.samples()[5].concentration);
}

TEST(Wastewater, PublicationWeeklyCadence) {
  auto gen = make_gen();
  EXPECT_EQ(gen.last_publication_day(-1), -1);
  EXPECT_EQ(gen.last_publication_day(0), 0);
  EXPECT_EQ(gen.last_publication_day(6), 0);
  EXPECT_EQ(gen.last_publication_day(7), 7);
  EXPECT_EQ(gen.last_publication_day(20), 14);
  // Checksum only changes on publication boundaries.
  std::string d8 = gen.published_csv(8);
  std::string d13 = gen.published_csv(13);
  std::string d14 = gen.published_csv(14);
  EXPECT_EQ(osprey::crypto::Sha256::hash_hex(d8),
            osprey::crypto::Sha256::hash_hex(d13));
  EXPECT_NE(osprey::crypto::Sha256::hash_hex(d13),
            osprey::crypto::Sha256::hash_hex(d14));
}

TEST(Wastewater, PublishedCsvParsesAndRespectsCutoff) {
  auto gen = make_gen();
  osprey::util::CsvTable table =
      osprey::util::CsvTable::parse(gen.published_csv(30));
  ASSERT_TRUE(table.has_column("day"));
  ASSERT_TRUE(table.has_column("concentration_gc_per_l"));
  for (double day : table.column_doubles("day")) {
    EXPECT_LE(day, 28.0);  // publication day for day 30 is 28
  }
  EXPECT_EQ(table.column_strings("plant")[0], "O'Brien");
  EXPECT_EQ(table.num_rows(), gen.samples_through(28).size());
}

TEST(Wastewater, ReportedCasesAreThinnedIncidence) {
  auto gen = make_gen(11);
  const auto& cases = gen.reported_cases();
  const auto& inc = gen.incidence();
  ASSERT_EQ(cases.size(), inc.size());
  double case_sum = 0.0, inc_sum = 0.0;
  for (std::size_t t = 0; t < cases.size(); ++t) {
    EXPECT_LE(cases[t], inc[t]);
    case_sum += cases[t];
    inc_sum += inc[t];
  }
  EXPECT_NEAR(case_sum / inc_sum, 0.25, 0.03);  // reporting fraction
}

TEST(Wastewater, PlantsHaveDistinctWaves) {
  oe::WastewaterConfig cfg;
  auto plants = oe::chicago_plants();
  auto truths = oe::chicago_truths();
  oe::WastewaterGenerator a(plants[0], truths[0], cfg, 1);
  oe::WastewaterGenerator b(plants[1], truths[1], cfg, 2);
  // Phases differ, so the R(t) trajectories are not identical.
  double max_diff = 0.0;
  for (std::size_t t = 0; t < a.true_rt().size(); ++t) {
    max_diff = std::max(max_diff,
                        std::abs(a.true_rt()[t] - b.true_rt()[t]));
  }
  EXPECT_GT(max_diff, 0.1);
}
