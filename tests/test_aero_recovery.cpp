// Crash-replay harness for the durable AERO metadata layer: a 16-seed
// kProcessCrash sweep proving recovered state is byte-identical to an
// uninterrupted run, plus a whole-server crash drill (volatile platform
// destroyed, durable MemFs survives) covering run adjudication,
// idempotent re-registration and serve-tier cache rebinding.

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "aero/server.hpp"
#include "aero/source.hpp"
#include "aero/wal.hpp"
#include "crypto/sha256.hpp"
#include "fabric/fault.hpp"
#include "serve/cache.hpp"
#include "util/durable_fs.hpp"

namespace oa = osprey::aero;
namespace of = osprey::fabric;
namespace ou = osprey::util;
using ou::kDay;
using ou::kHour;
using ou::kMinute;
using ou::kSecond;
using ou::Value;
using ou::ValueObject;

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string db_bytes(const oa::MetadataDb& db) {
  return db.to_json().to_json() + "\n" + db.provenance_dot();
}

/// Same deterministic op generator as test_aero_wal.cpp: one mutation
/// per index, a pure function of (seed, index, current db state) — so
/// re-issuing an op lost to a torn tail regenerates it exactly.
void scripted_op(oa::MetadataDb& db, std::uint64_t seed, std::uint64_t i) {
  std::uint64_t h = mix64(seed * 1000003 + i);
  std::vector<std::string> uuids = db.object_uuids();
  std::vector<std::uint64_t> open;
  for (const oa::RunRecord& r : db.runs()) {
    if (r.status == oa::RunStatus::kRunning) open.push_back(r.run_id);
  }
  std::uint64_t pick = h % 100;
  if (uuids.empty() || pick < 20) {
    db.register_object("obj-" + std::to_string(i),
                       "flow-" + std::to_string(h % 3));
  } else if (pick < 55) {
    const std::string& uuid = uuids[mix64(h) % uuids.size()];
    db.add_version(uuid, "sum-" + std::to_string(h % 9973),
                   h % 5000 + 1, static_cast<ou::SimTime>(i) * 60'000,
                   "eagle", "ww-rt", "p/" + std::to_string(i));
  } else if (pick < 80 || open.empty()) {
    const std::string& in = uuids[mix64(h + 1) % uuids.size()];
    db.start_run("flow-" + std::to_string(h % 4),
                 (h & 1) ? oa::FlowKind::kAnalysis : oa::FlowKind::kIngestion,
                 "op-" + std::to_string(i),
                 {{in, db.latest_version_number(in)}}, "bebop",
                 static_cast<ou::SimTime>(i) * 60'000);
  } else {
    const std::string& out = uuids[mix64(h + 2) % uuids.size()];
    db.finish_run(open[mix64(h + 3) % open.size()],
                  (h & 2) ? oa::RunStatus::kSucceeded : oa::RunStatus::kFailed,
                  {{out, db.latest_version_number(out)}},
                  static_cast<ou::SimTime>(i) * 60'000 + 30'000);
  }
}

}  // namespace

// --- 16-seed kProcessCrash sweep (registered per seed in ctest) ------

class RecoverySeedTest : public ::testing::TestWithParam<int> {};

TEST_P(RecoverySeedTest, CrashReplayIsByteIdenticalToUninterruptedRun) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const std::uint64_t kOps = 60;
  oa::WalOptions opts;
  // Vary the checkpoint cadence across seeds: never / every 3/6/9 ops.
  opts.checkpoint_every = (seed % 4) * 3;

  // Uninterrupted reference run.
  ou::MemFs ref_fs;
  oa::MetadataDb ref_db;
  {
    oa::Wal wal(ref_fs, opts);
    wal.recover(ref_db);
    for (std::uint64_t i = 0; i < kOps; ++i) scripted_op(ref_db, seed, i);
  }
  const std::string expected = db_bytes(ref_db);

  // Crash-replay run: the fault plan decides, deterministically per
  // seed, where the "process" dies. A crash destroys the db and the
  // Wal (all volatile state); the MemFs — the disk — survives. Odd
  // crash decisions additionally tear bytes off the live segment, as a
  // crash mid-append would.
  ou::MemFs fs;
  of::FaultPlan plan(seed);
  plan.set_rate(of::FaultKind::kProcessCrash, 0.10);
  plan.script_nth(of::FaultKind::kProcessCrash, "metadata-db", 7);
  std::uint64_t crashes = 0;
  std::uint64_t applied = 0;
  bool completed = false;
  while (!completed) {
    oa::MetadataDb db;
    oa::Wal wal(fs, opts);
    oa::RecoveryStats stats = wal.recover(db);
    applied = stats.checkpoint_lsn + stats.replayed;
    ASSERT_LE(applied, kOps) << "recovery replayed ops that never ran";

    bool crashed = false;
    while (applied < kOps) {
      if (plan.should_inject(of::FaultKind::kProcessCrash, "aero",
                             "metadata-db",
                             static_cast<ou::SimTime>(applied))) {
        ++crashes;
        if (mix64(seed ^ (applied + 1)) & 1) {
          std::vector<std::string> segments = fs.list("aero-wal/wal-");
          if (!segments.empty()) {
            fs.truncate_tail(segments.back(),
                             1 + mix64(seed + applied) % 48);
          }
        }
        crashed = true;
        break;
      }
      scripted_op(db, seed, applied);
      ++applied;
    }
    completed = !crashed;
    if (completed) {
      // The surviving process's state matches the reference...
      EXPECT_EQ(db_bytes(db), expected);
    }
  }
  EXPECT_GE(crashes, 1u) << "the sweep must actually crash";
  EXPECT_GE(plan.injected(of::FaultKind::kProcessCrash), crashes);

  // ...and so does a final cold recovery from the durable files alone.
  oa::MetadataDb db;
  oa::Wal wal(fs, opts);
  oa::RecoveryStats stats = wal.recover(db);
  EXPECT_EQ(stats.checkpoint_lsn + stats.replayed, kOps);
  EXPECT_EQ(db_bytes(db), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoverySeedTest, ::testing::Range(0, 16));

// --- whole-server crash drill ----------------------------------------

namespace {

Value upper_transform(const Value& args) {
  std::string s = args.at("input").as_string();
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  ValueObject out;
  out["output"] = Value(s);
  return Value(std::move(out));
}

/// Everything a process holds in memory: fabric services, the AERO
/// server, endpoints. Destroying a World IS the crash; the DurableFs
/// passed in plays the disk and lives on.
struct World {
  of::EventLoop loop;
  of::AuthService auth;
  of::TimerService timers{loop, auth};
  of::TransferService transfers{loop, auth, kSecond, 100.0e6};
  of::FlowsService flows{loop, auth};
  oa::AeroServer server{loop, auth, timers, transfers, flows};
  of::StorageEndpoint eagle{"eagle", loop, auth};
  of::StorageEndpoint scratch{"scratch", loop, auth};
  of::ComputeEndpoint login{"login", loop, auth, 2};
  std::string transform_fn;
  oa::RecoveryStats recovery;

  World(ou::DurableFs& fs, of::IncidentLog* incidents) {
    eagle.create_collection("data", server.token());
    scratch.create_collection("staging", server.token());
    transform_fn =
        login.register_function("upper", upper_transform, 30 * kSecond);
    if (incidents != nullptr) server.set_incident_log(incidents);
    recovery = server.enable_durability(fs);
  }

  oa::IngestionHandles register_flow(std::shared_ptr<oa::DataSource> source) {
    oa::IngestionFlowSpec spec;
    spec.name = "ww-ingest";
    spec.source = std::move(source);
    spec.poll_period = kDay;
    spec.first_poll = 0;
    spec.compute = &login;
    spec.function_id = transform_fn;
    spec.staging = &scratch;
    spec.staging_collection = "staging";
    spec.storage = &eagle;
    spec.collection = "data";
    spec.base_path = "ww-ingest";
    return server.register_ingestion(spec);
  }
};

std::shared_ptr<oa::ScriptedSource> feed() {
  return std::make_shared<oa::ScriptedSource>(
      "https://feed/ww",
      std::vector<std::pair<of::SimTime, std::string>>{{0, "week1"},
                                                       {2 * kDay, "week2"}});
}

}  // namespace

TEST(ServerCrashRecovery, MetadataAndServingTierSurviveRestart) {
  ou::MemFs fs;
  of::IncidentLog incidents;
  osprey::obs::MetricsRegistry cache_metrics;
  auto cache = std::unique_ptr<osprey::serve::ResultCache>();

  std::string raw_uuid;
  std::string output_uuid;
  {
    World w(fs, &incidents);
    EXPECT_FALSE(w.recovery.checkpoint_loaded);
    oa::IngestionHandles handles = w.register_flow(feed());
    raw_uuid = handles.raw_uuid;
    output_uuid = handles.output_uuid;
    w.loop.run_until(kHour);
    ASSERT_EQ(w.server.db().latest_version_number(output_uuid), 1);

    cache = std::make_unique<osprey::serve::ResultCache>(w.server,
                                                         cache_metrics);
    auto first = cache->lookup(output_uuid);
    EXPECT_EQ(first.outcome, osprey::serve::CacheOutcome::kMiss);
    EXPECT_TRUE(first.estimate.reason.empty());
    EXPECT_EQ(cache->lookup(output_uuid).outcome,
              osprey::serve::CacheOutcome::kHit);

    cache->detach();  // the cache object survives the crash
  }  // CRASH: the whole platform is destroyed; only `fs` persists

  {
    World w(fs, &incidents);
    // Metadata recovered from checkpoint + WAL replay.
    EXPECT_GT(w.recovery.replayed + w.recovery.checkpoint_lsn, 0u);
    EXPECT_EQ(w.server.db().latest_version_number(output_uuid), 1);
    EXPECT_EQ(w.server.db().object(output_uuid).name, "ww-ingest/transformed");

    // Re-registration is idempotent: the recovered objects are reused,
    // not duplicated.
    oa::IngestionHandles handles = w.register_flow(feed());
    EXPECT_EQ(handles.raw_uuid, raw_uuid);
    EXPECT_EQ(handles.output_uuid, output_uuid);
    EXPECT_EQ(w.server.db().find_objects("ww-ingest/").size(), 2u);

    // The rebound cache must never serve a pre-crash answer as a fresh
    // hit: the first post-restart lookup goes back to the origin.
    cache->rebind(w.server);
    auto again = cache->lookup(output_uuid);
    EXPECT_EQ(again.outcome, osprey::serve::CacheOutcome::kRevalidate);
    ASSERT_TRUE(again.estimate.version.has_value());
    EXPECT_EQ(again.estimate.version->checksum,
              osprey::crypto::Sha256::hash_hex("WEEK1"));

    // The restarted server keeps working: week2 lands as a NEW version
    // of the SAME recovered object, and the cache revalidates to it.
    w.loop.run_until(3 * kDay);
    int latest = w.server.db().latest_version_number(output_uuid);
    EXPECT_GE(latest, 2);
    auto fresh = cache->lookup(output_uuid);
    EXPECT_EQ(fresh.outcome, osprey::serve::CacheOutcome::kRevalidate);
    EXPECT_EQ(fresh.estimate.version->checksum,
              osprey::crypto::Sha256::hash_hex("WEEK2"));

    cache->detach();
  }
}

TEST(ServerCrashRecovery, InterruptedRunIsAdjudicatedFailed) {
  ou::MemFs fs;
  of::IncidentLog incidents;
  std::string output_uuid;
  {
    World w(fs, &incidents);
    oa::IngestionHandles handles = w.register_flow(feed());
    output_uuid = handles.output_uuid;
    // Stop mid-flow: the poll at t=0 has started a run (start_run is in
    // the WAL) but stage-out has not completed.
    w.loop.run_until(2 * kSecond);
    bool any_running = false;
    for (const oa::RunRecord& r : w.server.db().runs()) {
      any_running = any_running || r.status == oa::RunStatus::kRunning;
    }
    ASSERT_TRUE(any_running) << "drill needs an in-flight run to interrupt";
  }  // CRASH mid-run

  World w(fs, &incidents);
  // Every recovered run is adjudicated: nothing stays kRunning.
  ASSERT_FALSE(w.server.db().runs().empty());
  for (const oa::RunRecord& r : w.server.db().runs()) {
    EXPECT_NE(r.status, oa::RunStatus::kRunning);
  }
  EXPECT_GE(incidents.count_kind("run-interrupted"), 1u);

  // The adjudication itself was write-ahead logged: a second cold
  // recovery sees the failed run without re-adjudicating.
  of::IncidentLog incidents2;
  World w2(fs, &incidents2);
  EXPECT_EQ(incidents2.count_kind("run-interrupted"), 0u);
  EXPECT_EQ(db_bytes(w2.server.db()), db_bytes(w.server.db()));
}

TEST(ServerCrashRecovery, DurabilityMustPrecedeRegistration) {
  ou::MemFs fs;
  of::EventLoop loop;
  of::AuthService auth;
  of::TimerService timers{loop, auth};
  of::TransferService transfers{loop, auth, kSecond, 100.0e6};
  of::FlowsService flows{loop, auth};
  oa::AeroServer server{loop, auth, timers, transfers, flows};
  server.db().register_object("early", "flow");
  EXPECT_THROW(server.enable_durability(fs), ou::InvalidArgument);
}
