#include <gtest/gtest.h>

#include "fabric/flows.hpp"
#include "fabric/timer.hpp"
#include "util/error.hpp"

namespace of = osprey::fabric;
namespace ou = osprey::util;
using ou::kDay;
using ou::kHour;
using ou::kSecond;

class TimerFlowsTest : public ::testing::Test {
 protected:
  of::EventLoop loop;
  of::AuthService auth;
  of::TimerService timers{loop, auth};
  of::FlowsService flows{loop, auth};
  std::string token = auth.issue_full_token("user");
};

TEST_F(TimerFlowsTest, PeriodicFiring) {
  std::vector<of::SimTime> fires;
  timers.every(kDay, 6 * kHour, [&] { fires.push_back(loop.now()); }, token,
               "daily");
  loop.run_until(3 * kDay);
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], 6 * kHour);
  EXPECT_EQ(fires[1], kDay + 6 * kHour);
  EXPECT_EQ(fires[2], 2 * kDay + 6 * kHour);
  EXPECT_EQ(timers.total_fires(), 3u);
}

TEST_F(TimerFlowsTest, CancelStopsFiring) {
  int count = 0;
  of::TimerId id = timers.every(kHour, 0, [&] { ++count; }, token);
  loop.run_until(2 * kHour + kSecond);
  EXPECT_EQ(count, 3);  // t = 0, 1h, 2h
  EXPECT_TRUE(timers.cancel(id));
  EXPECT_FALSE(timers.cancel(id));
  loop.run_until(10 * kHour);
  EXPECT_EQ(count, 3);
}

TEST_F(TimerFlowsTest, TimerCanCancelItself) {
  int count = 0;
  of::TimerId id = 0;
  id = timers.every(kHour, 0,
                    [&] {
                      if (++count == 2) timers.cancel(id);
                    },
                    token);
  loop.run_until(10 * kHour);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(timers.active_count(), 0u);
}

TEST_F(TimerFlowsTest, TimerRequiresScope) {
  std::string weak = auth.issue_token("weak", {of::scopes::kFlows});
  EXPECT_THROW(timers.every(kHour, 0, [] {}, weak), ou::AuthError);
  EXPECT_THROW(timers.every(0, 0, [] {}, token), ou::InvalidArgument);
}

TEST_F(TimerFlowsTest, FlowRunsStepsInOrder) {
  std::vector<std::string> order;
  of::FlowDefinition flow;
  flow.name = "pipeline";
  for (const std::string name : {"stage-in", "execute", "stage-out"}) {
    flow.steps.push_back(of::FlowStep{
        name, [&order, name](of::FlowRunContext&, of::StepDone done) {
          order.push_back(name);
          done(true, "");
        }});
  }
  bool finished = false;
  flows.run(flow, token,
            [&](const of::FlowRunRecord& rec, const ou::Value&) {
              finished = true;
              EXPECT_EQ(rec.status, of::FlowRunStatus::kSucceeded);
              EXPECT_EQ(rec.steps.size(), 3u);
            });
  loop.run_all();
  EXPECT_TRUE(finished);
  EXPECT_EQ(order,
            (std::vector<std::string>{"stage-in", "execute", "stage-out"}));
}

TEST_F(TimerFlowsTest, AsyncStepsCompleteLater) {
  of::FlowDefinition flow;
  flow.name = "async";
  flow.steps.push_back(of::FlowStep{
      "wait", [this](of::FlowRunContext&, of::StepDone done) {
        loop.schedule_after(5 * kSecond, [done] { done(true, ""); });
      }});
  flow.steps.push_back(of::FlowStep{
      "after", [this](of::FlowRunContext& ctx, of::StepDone done) {
        ctx.state["t"] = ou::Value(loop.now());
        done(true, "");
      }});
  of::SimTime second_step_time = -1;
  flows.run(flow, token,
            [&](const of::FlowRunRecord&, const ou::Value& state) {
              second_step_time = state.at("t").as_int();
            });
  loop.run_all();
  EXPECT_EQ(second_step_time, 5 * kSecond);
}

TEST_F(TimerFlowsTest, FailedStepAbortsFlow) {
  std::vector<std::string> ran;
  of::FlowDefinition flow;
  flow.name = "failing";
  flow.steps.push_back(of::FlowStep{
      "ok", [&](of::FlowRunContext&, of::StepDone done) {
        ran.push_back("ok");
        done(true, "");
      }});
  flow.steps.push_back(of::FlowStep{
      "boom", [&](of::FlowRunContext&, of::StepDone done) {
        ran.push_back("boom");
        done(false, "exploded");
      }});
  flow.steps.push_back(of::FlowStep{
      "never", [&](of::FlowRunContext&, of::StepDone done) {
        ran.push_back("never");
        done(true, "");
      }});
  of::FlowRunId id = flows.run(flow, token);
  loop.run_all();
  EXPECT_EQ(ran, (std::vector<std::string>{"ok", "boom"}));
  const of::FlowRunRecord& rec = flows.record(id);
  EXPECT_EQ(rec.status, of::FlowRunStatus::kFailed);
  EXPECT_EQ(rec.steps.back().error, "exploded");
  EXPECT_EQ(flows.runs_succeeded(), 0u);
}

TEST_F(TimerFlowsTest, ThrowingStepIsCaught) {
  of::FlowDefinition flow;
  flow.name = "thrower";
  flow.steps.push_back(of::FlowStep{
      "throws", [](of::FlowRunContext&, of::StepDone) {
        throw std::runtime_error("step exception");
      }});
  of::FlowRunId id = flows.run(flow, token);
  loop.run_all();
  EXPECT_EQ(flows.record(id).status, of::FlowRunStatus::kFailed);
  EXPECT_NE(flows.record(id).steps[0].error.find("step exception"),
            std::string::npos);
}

TEST_F(TimerFlowsTest, StateFlowsBetweenSteps) {
  of::FlowDefinition flow;
  flow.name = "stateful";
  flow.steps.push_back(
      of::FlowStep{"write", [](of::FlowRunContext& ctx, of::StepDone done) {
                     ctx.state["acc"] = ou::Value(std::int64_t{10});
                     done(true, "");
                   }});
  flow.steps.push_back(
      of::FlowStep{"add", [](of::FlowRunContext& ctx, of::StepDone done) {
                     ctx.state["acc"] =
                         ou::Value(ctx.state.at("acc").as_int() + 32);
                     done(true, "");
                   }});
  std::int64_t final_acc = 0;
  flows.run(flow, token,
            [&](const of::FlowRunRecord&, const ou::Value& state) {
              final_acc = state.at("acc").as_int();
            });
  loop.run_all();
  EXPECT_EQ(final_acc, 42);
}

TEST_F(TimerFlowsTest, EmptyFlowRejected) {
  of::FlowDefinition flow;
  flow.name = "empty";
  EXPECT_THROW(flows.run(flow, token), ou::InvalidArgument);
}
