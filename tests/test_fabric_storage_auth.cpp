#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "fabric/auth.hpp"
#include "fabric/event_loop.hpp"
#include "fabric/storage.hpp"
#include "util/error.hpp"

namespace of = osprey::fabric;
namespace ou = osprey::util;

class StorageAuthTest : public ::testing::Test {
 protected:
  of::EventLoop loop;
  of::AuthService auth;
  of::StorageEndpoint eagle{"eagle", loop, auth};
  std::string alice = auth.issue_full_token("alice");
  std::string bob = auth.issue_full_token("bob");
};

TEST_F(StorageAuthTest, TokenValidation) {
  std::string t = auth.issue_token("carol", {of::scopes::kStorageRead});
  EXPECT_EQ(auth.identity_of(t), "carol");
  EXPECT_NO_THROW(auth.validate(t, of::scopes::kStorageRead));
  EXPECT_THROW(auth.validate(t, of::scopes::kStorageWrite), ou::AuthError);
  EXPECT_THROW(auth.validate("tok-bogus", of::scopes::kStorageRead),
               ou::AuthError);
}

TEST_F(StorageAuthTest, RevokedTokenRejected) {
  std::string t = auth.issue_full_token("dave");
  auth.revoke(t);
  EXPECT_THROW(auth.validate(t, of::scopes::kStorageRead), ou::AuthError);
}

TEST_F(StorageAuthTest, PutGetRoundTripWithChecksum) {
  eagle.create_collection("data", alice);
  std::string payload = "day,conc\n0,1.5\n";
  std::string checksum = eagle.put("data", "ww/raw.csv", payload, alice);
  EXPECT_EQ(checksum, osprey::crypto::Sha256::hash_hex(payload));
  const of::StoredObject& obj = eagle.get("data", "ww/raw.csv", alice);
  EXPECT_EQ(obj.bytes, payload);
  EXPECT_EQ(obj.checksum, checksum);
  EXPECT_EQ(obj.generation, 1u);
}

TEST_F(StorageAuthTest, OverwriteBumpsGenerationAndTimestamp) {
  eagle.create_collection("data", alice);
  eagle.put("data", "x", "v1", alice);
  loop.run_until(5 * ou::kMinute);
  eagle.put("data", "x", "v2", alice);
  const of::StoredObject& obj = eagle.get("data", "x", alice);
  EXPECT_EQ(obj.generation, 2u);
  EXPECT_EQ(obj.modified, 5 * ou::kMinute);
  EXPECT_EQ(obj.bytes, "v2");
}

TEST_F(StorageAuthTest, NonOwnerDeniedWithoutGrant) {
  eagle.create_collection("data", alice);
  eagle.put("data", "x", "secret", alice);
  EXPECT_THROW(eagle.get("data", "x", bob), ou::AuthError);
  EXPECT_THROW(eagle.put("data", "y", "z", bob), ou::AuthError);
}

TEST_F(StorageAuthTest, ReadGrantAllowsReadOnly) {
  eagle.create_collection("data", alice);
  eagle.put("data", "x", "shared", alice);
  eagle.grant("data", "bob", of::Permission::kRead, alice);
  EXPECT_EQ(eagle.get("data", "x", bob).bytes, "shared");
  EXPECT_THROW(eagle.put("data", "x", "nope", bob), ou::AuthError);
  EXPECT_EQ(eagle.permission_of("data", "bob"), of::Permission::kRead);
}

TEST_F(StorageAuthTest, ReadWriteGrant) {
  eagle.create_collection("data", alice);
  eagle.grant("data", "bob", of::Permission::kReadWrite, alice);
  EXPECT_NO_THROW(eagle.put("data", "b", "bob-data", bob));
  EXPECT_EQ(eagle.get("data", "b", bob).bytes, "bob-data");
}

TEST_F(StorageAuthTest, OnlyOwnerGrants) {
  eagle.create_collection("data", alice);
  EXPECT_THROW(eagle.grant("data", "eve", of::Permission::kRead, bob),
               ou::InvalidArgument);
}

TEST_F(StorageAuthTest, ListWithPrefix) {
  eagle.create_collection("data", alice);
  eagle.put("data", "rt/0/summary", "a", alice);
  eagle.put("data", "rt/1/summary", "b", alice);
  eagle.put("data", "plants/0/raw", "c", alice);
  std::vector<std::string> rt = eagle.list("data", "rt/", alice);
  EXPECT_EQ(rt.size(), 2u);
  EXPECT_EQ(eagle.list("data", "", alice).size(), 3u);
}

TEST_F(StorageAuthTest, RemoveAndMissingObject) {
  eagle.create_collection("data", alice);
  eagle.put("data", "x", "v", alice);
  EXPECT_TRUE(eagle.exists("data", "x"));
  eagle.remove("data", "x", alice);
  EXPECT_FALSE(eagle.exists("data", "x"));
  EXPECT_THROW(eagle.get("data", "x", alice), ou::NotFound);
  EXPECT_THROW(eagle.remove("data", "x", alice), ou::NotFound);
}

TEST_F(StorageAuthTest, UnknownCollectionThrows) {
  EXPECT_THROW(eagle.get("nope", "x", alice), ou::NotFound);
  EXPECT_FALSE(eagle.exists("nope", "x"));
}

TEST_F(StorageAuthTest, DuplicateCollectionThrows) {
  eagle.create_collection("data", alice);
  EXPECT_THROW(eagle.create_collection("data", alice), ou::InvalidArgument);
}

TEST_F(StorageAuthTest, BytesAccounting) {
  eagle.create_collection("data", alice);
  eagle.put("data", "x", "12345", alice);
  EXPECT_EQ(eagle.bytes_stored(), 5u);
  eagle.put("data", "x", "123", alice);  // overwrite shrinks
  EXPECT_EQ(eagle.bytes_stored(), 3u);
  eagle.put("data", "y", "zz", alice);
  EXPECT_EQ(eagle.bytes_stored(), 5u);
  eagle.remove("data", "y", alice);
  EXPECT_EQ(eagle.bytes_stored(), 3u);
  EXPECT_EQ(eagle.num_objects(), 1u);
}
