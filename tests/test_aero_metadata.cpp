#include "aero/metadata_db.hpp"

#include <gtest/gtest.h>

#include "aero/source.hpp"
#include "util/error.hpp"
#include "util/uuid.hpp"

namespace oa = osprey::aero;

TEST(MetadataDb, RegisterReturnsUuid) {
  oa::MetadataDb db;
  std::string uuid = db.register_object("ww/raw", "ingest-obrien");
  EXPECT_TRUE(osprey::util::looks_like_uuid(uuid));
  EXPECT_TRUE(db.has_object(uuid));
  EXPECT_EQ(db.object(uuid).name, "ww/raw");
  EXPECT_EQ(db.object(uuid).producer_flow, "ingest-obrien");
}

TEST(MetadataDb, UnknownObjectThrows) {
  oa::MetadataDb db;
  EXPECT_FALSE(db.has_object("nope"));
  EXPECT_THROW(db.object("nope"), osprey::util::NotFound);
  EXPECT_THROW(db.add_version("nope", "c", 1, 0, "e", "c", "p"),
               osprey::util::NotFound);
}

TEST(MetadataDb, VersionsAutoIncrement) {
  oa::MetadataDb db;
  std::string uuid = db.register_object("obj", "");
  EXPECT_EQ(db.latest_version_number(uuid), 0);
  EXPECT_FALSE(db.latest_version(uuid).has_value());
  const oa::DataVersion& v1 =
      db.add_version(uuid, "sum1", 100, 5, "eagle", "col", "p1");
  EXPECT_EQ(v1.version, 1);
  const oa::DataVersion& v2 =
      db.add_version(uuid, "sum2", 200, 9, "eagle", "col", "p2");
  EXPECT_EQ(v2.version, 2);
  auto latest = db.latest_version(uuid);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->checksum, "sum2");
  EXPECT_EQ(latest->size_bytes, 200u);
  EXPECT_EQ(latest->timestamp, 9);
  EXPECT_EQ(db.object(uuid).versions.size(), 2u);
}

TEST(MetadataDb, RunLifecycle) {
  oa::MetadataDb db;
  std::string in = db.register_object("in", "");
  std::string out = db.register_object("out", "flow");
  db.add_version(in, "c", 1, 0, "e", "c", "p");
  std::uint64_t run = db.start_run("flow", oa::FlowKind::kAnalysis,
                                   "update of in", {{in, 1}}, "bebop", 10);
  EXPECT_EQ(db.run(run).status, oa::RunStatus::kRunning);
  db.finish_run(run, oa::RunStatus::kSucceeded, {{out, 1}}, 50);
  const oa::RunRecord& rec = db.run(run);
  EXPECT_EQ(rec.status, oa::RunStatus::kSucceeded);
  EXPECT_EQ(rec.started, 10);
  EXPECT_EQ(rec.ended, 50);
  ASSERT_EQ(rec.inputs.size(), 1u);
  EXPECT_EQ(rec.inputs[0].uuid, in);
  ASSERT_EQ(rec.outputs.size(), 1u);
  EXPECT_EQ(rec.outputs[0].uuid, out);
}

TEST(MetadataDb, CountsQueriesAndUpdates) {
  oa::MetadataDb db;
  std::uint64_t u0 = db.update_count();
  std::string uuid = db.register_object("obj", "");
  db.add_version(uuid, "c", 1, 0, "e", "c", "p");
  EXPECT_EQ(db.update_count(), u0 + 2);
  std::uint64_t q0 = db.query_count();
  db.latest_version(uuid);
  db.has_object(uuid);
  EXPECT_GT(db.query_count(), q0);
}

TEST(MetadataDb, ObjectUuidsSorted) {
  oa::MetadataDb db;
  db.register_object("a", "");
  db.register_object("b", "");
  auto uuids = db.object_uuids();
  EXPECT_EQ(uuids.size(), 2u);
  EXPECT_LT(uuids[0], uuids[1]);
}

TEST(MetadataDb, ProvenanceDotContainsNodesAndEdges) {
  oa::MetadataDb db;
  std::string in = db.register_object("source-data", "");
  std::string out = db.register_object("result", "analysis");
  db.add_version(in, "c", 1, 0, "e", "c", "p");
  std::uint64_t run = db.start_run("analysis", oa::FlowKind::kAnalysis, "t",
                                   {{in, 1}}, "ep", 0);
  db.add_version(out, "c2", 2, 1, "e", "c", "p2");
  db.finish_run(run, oa::RunStatus::kSucceeded, {{out, 1}}, 2);
  std::string dot = db.provenance_dot();
  EXPECT_NE(dot.find("digraph provenance"), std::string::npos);
  EXPECT_NE(dot.find("source-data"), std::string::npos);
  EXPECT_NE(dot.find("analysis#0"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(ScriptedSource, RevealsByTime) {
  oa::ScriptedSource src("https://example/feed",
                         {{10, "v1"}, {20, "v2"}});
  EXPECT_FALSE(src.fetch(5).has_value());
  EXPECT_EQ(src.fetch(10).value(), "v1");
  EXPECT_EQ(src.fetch(15).value(), "v1");
  EXPECT_EQ(src.fetch(25).value(), "v2");
  EXPECT_EQ(src.fetch_count(), 4u);
  EXPECT_EQ(src.url(), "https://example/feed");
}

TEST(ScriptedSource, RejectsUnsortedTimeline) {
  EXPECT_THROW(
      oa::ScriptedSource("u", {{20, "a"}, {10, "b"}}),
      osprey::util::InvalidArgument);
}

TEST(MetadataDb, FindObjectsByNamePrefix) {
  oa::MetadataDb db;
  std::string a = db.register_object("rt/obrien/summary", "rt-flow");
  std::string b = db.register_object("rt/calumet/summary", "rt-flow");
  std::string c = db.register_object("plants/raw", "ingest");
  db.add_version(a, "c1", 1, 0, "e", "col", "p");

  auto rt = db.find_objects("rt/");
  ASSERT_EQ(rt.size(), 2u);
  EXPECT_EQ(rt[0].name, "rt/calumet/summary");  // sorted by name
  EXPECT_EQ(rt[1].name, "rt/obrien/summary");
  EXPECT_EQ(rt[1].latest_version, 1);
  EXPECT_EQ(rt[0].latest_version, 0);
  EXPECT_EQ(rt[0].producer_flow, "rt-flow");

  EXPECT_EQ(db.find_objects("").size(), 3u);
  EXPECT_TRUE(db.find_objects("nothing/").empty());
  (void)c;
}

// --- lineage edge cases ----------------------------------------------

TEST(MetadataDbLineage, EmptyDbThrowsForUnknownObject) {
  oa::MetadataDb db;
  EXPECT_THROW(db.upstream_lineage("nope"), osprey::util::NotFound);
  EXPECT_THROW(db.downstream_lineage("nope"), osprey::util::NotFound);
}

TEST(MetadataDbLineage, ObjectWithNoRunsIsItsOwnLineage) {
  oa::MetadataDb db;
  std::string lonely = db.register_object("lonely", "");
  oa::MetadataDb::Lineage up = db.upstream_lineage(lonely);
  EXPECT_EQ(up.object_uuids, std::vector<std::string>{lonely});
  EXPECT_TRUE(up.run_ids.empty());
  oa::MetadataDb::Lineage down = db.downstream_lineage(lonely);
  EXPECT_EQ(down.object_uuids, std::vector<std::string>{lonely});
  EXPECT_TRUE(down.run_ids.empty());
}

TEST(MetadataDbLineage, SelfReferentialRunTerminates) {
  // A run that reads AND writes the same object (an in-place refinement)
  // must not send the BFS into a cycle.
  oa::MetadataDb db;
  std::string obj = db.register_object("state", "refine");
  db.add_version(obj, "c1", 1, 0, "e", "col", "p");
  std::uint64_t run =
      db.start_run("refine", oa::FlowKind::kAnalysis, "t", {{obj, 1}}, "ep", 1);
  db.add_version(obj, "c2", 2, 2, "e", "col", "p");
  db.finish_run(run, oa::RunStatus::kSucceeded, {{obj, 2}}, 3);

  oa::MetadataDb::Lineage up = db.upstream_lineage(obj);
  EXPECT_EQ(up.object_uuids, std::vector<std::string>{obj});
  EXPECT_EQ(up.run_ids, std::vector<std::uint64_t>{run});
  oa::MetadataDb::Lineage down = db.downstream_lineage(obj);
  EXPECT_EQ(down.object_uuids, std::vector<std::string>{obj});
  EXPECT_EQ(down.run_ids, std::vector<std::uint64_t>{run});
}

TEST(MetadataDbLineage, TwoObjectCycleTerminatesAndCoversBoth) {
  oa::MetadataDb db;
  std::string a = db.register_object("a", "");
  std::string b = db.register_object("b", "");
  db.add_version(a, "ca", 1, 0, "e", "col", "p");
  std::uint64_t r1 =
      db.start_run("a-to-b", oa::FlowKind::kAnalysis, "t", {{a, 1}}, "ep", 1);
  db.add_version(b, "cb", 1, 2, "e", "col", "p");
  db.finish_run(r1, oa::RunStatus::kSucceeded, {{b, 1}}, 2);
  std::uint64_t r2 =
      db.start_run("b-to-a", oa::FlowKind::kAnalysis, "t", {{b, 1}}, "ep", 3);
  db.add_version(a, "ca2", 2, 4, "e", "col", "p");
  db.finish_run(r2, oa::RunStatus::kSucceeded, {{a, 2}}, 4);

  oa::MetadataDb::Lineage down = db.downstream_lineage(a);
  EXPECT_EQ(down.object_uuids.size(), 2u);
  EXPECT_EQ(down.run_ids.size(), 2u);
  oa::MetadataDb::Lineage up = db.upstream_lineage(b);
  EXPECT_EQ(up.object_uuids.size(), 2u);
}

TEST(MetadataDbLineage, ProvenanceDotIsByteIdenticalAcrossReplays) {
  // Two independent replays of the same mutation sequence must render
  // the exact same provenance bytes — the property the crash-recovery
  // acceptance check builds on.
  auto build = [] {
    oa::MetadataDb db;
    std::string raw = db.register_object("ww/raw", "ingest");
    std::string rt = db.register_object("ww/rt", "estimate");
    db.add_version(raw, "c1", 10, 0, "eagle", "col", "p");
    std::uint64_t run = db.start_run("estimate", oa::FlowKind::kAnalysis,
                                     "update", {{raw, 1}}, "bebop", 5);
    db.add_version(rt, "c2", 20, 6, "eagle", "col", "q");
    db.finish_run(run, oa::RunStatus::kSucceeded, {{rt, 1}}, 7);
    db.start_run("estimate", oa::FlowKind::kAnalysis, "update", {{raw, 1}},
                 "bebop", 9);  // left in flight on purpose
    return db.provenance_dot();
  };
  std::string first = build();
  std::string second = build();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}
