// WAL framing, torn/corrupt-log fuzzing, and snapshot round-trip
// property tests for the durable AERO metadata layer (DESIGN.md §4f).

#include "aero/wal.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "aero/metadata_db.hpp"
#include "obs/metrics.hpp"
#include "util/durable_fs.hpp"
#include "util/error.hpp"

namespace oa = osprey::aero;
namespace ou = osprey::util;

namespace {

/// splitmix64 finalizer: the repo's counter-based determinism idiom —
/// no global RNG, every "random" choice is a pure function of its key.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string db_bytes(const oa::MetadataDb& db) {
  return db.to_json().to_json() + "\n" + db.provenance_dot();
}

/// One deterministic mutation, chosen from the db's current state, so
/// the identical op sequence can be re-issued against a recovered db.
void scripted_op(oa::MetadataDb& db, std::uint64_t seed, std::uint64_t i) {
  std::uint64_t h = mix64(seed * 1000003 + i);
  std::vector<std::string> uuids = db.object_uuids();
  std::vector<std::uint64_t> open;
  for (const oa::RunRecord& r : db.runs()) {
    if (r.status == oa::RunStatus::kRunning) open.push_back(r.run_id);
  }
  std::uint64_t pick = h % 100;
  if (uuids.empty() || pick < 20) {
    db.register_object("obj-" + std::to_string(i),
                       "flow-" + std::to_string(h % 3));
  } else if (pick < 55) {
    const std::string& uuid = uuids[mix64(h) % uuids.size()];
    db.add_version(uuid, "sum-" + std::to_string(h % 9973),
                   h % 5000 + 1, static_cast<ou::SimTime>(i) * 60'000,
                   "eagle", "ww-rt", "p/" + std::to_string(i));
  } else if (pick < 80 || open.empty()) {
    const std::string& in = uuids[mix64(h + 1) % uuids.size()];
    db.start_run("flow-" + std::to_string(h % 4),
                 (h & 1) ? oa::FlowKind::kAnalysis : oa::FlowKind::kIngestion,
                 "op-" + std::to_string(i),
                 {{in, db.latest_version_number(in)}}, "bebop",
                 static_cast<ou::SimTime>(i) * 60'000);
  } else {
    const std::string& out = uuids[mix64(h + 2) % uuids.size()];
    db.finish_run(open[mix64(h + 3) % open.size()],
                  (h & 2) ? oa::RunStatus::kSucceeded : oa::RunStatus::kFailed,
                  {{out, db.latest_version_number(out)}},
                  static_cast<ou::SimTime>(i) * 60'000 + 30'000);
  }
}

/// Record a small log into `fs` (single segment: checkpoints disabled)
/// and capture the db state after every op, so fuzz recoveries can be
/// checked against the exact prefix they should restore.
std::vector<std::string> record_log(ou::MemFs& fs, std::uint64_t seed,
                                    std::uint64_t ops) {
  oa::MetadataDb db;
  oa::Wal wal(fs, oa::WalOptions{});
  wal.recover(db);
  std::vector<std::string> states;
  states.push_back(db_bytes(db));  // state after 0 ops
  for (std::uint64_t i = 0; i < ops; ++i) {
    scripted_op(db, seed, i);
    states.push_back(db_bytes(db));
  }
  return states;
}

/// Number of whole records in the first `len` bytes of a segment.
std::size_t records_within(const std::string& bytes, std::size_t len) {
  std::size_t offset = 0;
  std::size_t count = 0;
  while (offset < len) {
    oa::DecodedRecord d = oa::decode_record(bytes, offset);
    if (d.status != oa::DecodeStatus::kOk || offset + d.consumed > len) break;
    offset += d.consumed;
    ++count;
  }
  return count;
}

}  // namespace

// --- framing ---------------------------------------------------------

TEST(WalFraming, EncodeDecodeRoundTrip) {
  std::string payload = "{\"op\":\"noop\",\"lsn\":1}";
  std::string frame = oa::encode_record(payload);
  EXPECT_EQ(frame.size(), 4 + 32 + payload.size());
  oa::DecodedRecord d = oa::decode_record(frame, 0);
  EXPECT_EQ(d.status, oa::DecodeStatus::kOk);
  EXPECT_EQ(d.payload, payload);
  EXPECT_EQ(d.consumed, frame.size());
}

TEST(WalFraming, EmptyPayloadIsValid) {
  std::string frame = oa::encode_record("");
  oa::DecodedRecord d = oa::decode_record(frame, 0);
  EXPECT_EQ(d.status, oa::DecodeStatus::kOk);
  EXPECT_EQ(d.payload, "");
}

TEST(WalFraming, SequentialRecordsDecodeAtOffsets) {
  std::string buffer = oa::encode_record("first") + oa::encode_record("second");
  oa::DecodedRecord a = oa::decode_record(buffer, 0);
  ASSERT_EQ(a.status, oa::DecodeStatus::kOk);
  oa::DecodedRecord b = oa::decode_record(buffer, a.consumed);
  ASSERT_EQ(b.status, oa::DecodeStatus::kOk);
  EXPECT_EQ(a.payload, "first");
  EXPECT_EQ(b.payload, "second");
}

TEST(WalFraming, EveryTruncationIsTornNeverOk) {
  std::string frame = oa::encode_record("some payload bytes");
  for (std::size_t len = 0; len < frame.size(); ++len) {
    oa::DecodedRecord d = oa::decode_record(frame.substr(0, len), 0);
    EXPECT_EQ(d.status, oa::DecodeStatus::kTorn) << "at length " << len;
  }
}

TEST(WalFraming, ChecksumFlipIsCorrupt) {
  std::string frame = oa::encode_record("payload");
  for (std::size_t i = 4; i < frame.size(); ++i) {  // skip the length field
    std::string damaged = frame;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x40);
    oa::DecodedRecord d = oa::decode_record(damaged, 0);
    EXPECT_EQ(d.status, oa::DecodeStatus::kCorrupt) << "at byte " << i;
  }
}

TEST(WalFraming, DecodePastEndIsTorn) {
  EXPECT_EQ(oa::decode_record("", 0).status, oa::DecodeStatus::kTorn);
  EXPECT_EQ(oa::decode_record("abc", 7).status, oa::DecodeStatus::kTorn);
}

// --- torn/corrupt-WAL fuzzing ----------------------------------------

TEST(WalFuzz, TruncateAtEveryByteOffsetRecoversLongestPrefix) {
  ou::MemFs pristine;
  std::vector<std::string> states = record_log(pristine, /*seed=*/7, 12);
  std::vector<std::string> segments = pristine.list("aero-wal/wal-");
  ASSERT_EQ(segments.size(), 1u);
  const std::string segment = segments[0];
  const std::string bytes = *pristine.read(segment);

  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    ou::MemFs fs = pristine;
    fs.truncate_tail(segment, cut);
    std::size_t expected = records_within(bytes, bytes.size() - cut);

    oa::MetadataDb db;
    oa::Wal wal(fs, oa::WalOptions{});
    oa::RecoveryStats stats;
    ASSERT_NO_THROW(stats = wal.recover(db)) << "cut " << cut;
    EXPECT_EQ(stats.replayed, expected) << "cut " << cut;
    EXPECT_EQ(db_bytes(db), states[expected]) << "cut " << cut;
    // A clean record boundary leaves nothing torn; anything else leaves
    // exactly one torn tail.
    EXPECT_LE(stats.torn, 1u) << "cut " << cut;
    EXPECT_EQ(stats.corrupt, 0u) << "cut " << cut;
  }
}

TEST(WalFuzz, BitFlipAtEveryByteRejectsDamagedRecord) {
  ou::MemFs pristine;
  std::vector<std::string> states = record_log(pristine, /*seed=*/11, 10);
  std::vector<std::string> segments = pristine.list("aero-wal/wal-");
  ASSERT_EQ(segments.size(), 1u);
  const std::string segment = segments[0];
  const std::string bytes = *pristine.read(segment);

  // Record boundaries of the pristine log, so we know which record each
  // flipped byte lands in.
  std::vector<std::size_t> starts;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    starts.push_back(offset);
    offset += oa::decode_record(bytes, offset).consumed;
  }

  for (std::size_t flip = 0; flip < bytes.size(); ++flip) {
    ou::MemFs fs = pristine;
    fs.flip_byte(segment, flip, 0x20);
    std::size_t damaged_record = 0;
    while (damaged_record + 1 < starts.size() &&
           starts[damaged_record + 1] <= flip) {
      ++damaged_record;
    }

    oa::MetadataDb db;
    oa::Wal wal(fs, oa::WalOptions{});
    oa::RecoveryStats stats;
    ASSERT_NO_THROW(stats = wal.recover(db)) << "flip " << flip;
    // The damaged record and everything after it are rejected; the
    // prefix before it survives byte-identically.
    EXPECT_EQ(stats.replayed, damaged_record) << "flip " << flip;
    EXPECT_GE(stats.torn + stats.corrupt, 1u) << "flip " << flip;
    EXPECT_EQ(db_bytes(db), states[damaged_record]) << "flip " << flip;
  }
}

TEST(WalFuzz, DamagedLogStaysAppendableAfterRecovery) {
  ou::MemFs fs;
  record_log(fs, /*seed=*/3, 8);
  std::string segment = fs.list("aero-wal/wal-")[0];
  fs.truncate_tail(segment, 10);  // tear the final record

  oa::MetadataDb db;
  oa::Wal wal(fs, oa::WalOptions{});
  oa::RecoveryStats stats = wal.recover(db);
  std::uint64_t applied = stats.checkpoint_lsn + stats.replayed;
  // Re-issue the lost tail plus fresh ops; then a second recovery must
  // reproduce the continued state exactly.
  for (std::uint64_t i = applied; i < 14; ++i) scripted_op(db, 3, i);
  std::string expected = db_bytes(db);

  oa::MetadataDb db2;
  oa::Wal wal2(fs, oa::WalOptions{});
  oa::RecoveryStats stats2 = wal2.recover(db2);
  EXPECT_EQ(stats2.torn, 0u);
  EXPECT_EQ(stats2.corrupt, 0u);
  EXPECT_EQ(db_bytes(db2), expected);
}

// --- checkpoints -----------------------------------------------------

TEST(WalCheckpoint, AutomaticCheckpointsBoundReplayAndPruneSegments) {
  ou::MemFs fs;
  oa::WalOptions opts;
  opts.checkpoint_every = 5;
  {
    oa::MetadataDb db;
    oa::Wal wal(fs, opts);
    wal.recover(db);
    for (std::uint64_t i = 0; i < 23; ++i) scripted_op(db, 21, i);
  }
  // 23 appends with a checkpoint every 5: generations exist, only the
  // newest two are retained.
  std::vector<std::string> checkpoints = fs.list("aero-wal/checkpoint-");
  EXPECT_EQ(checkpoints.size(), 2u);

  oa::MetadataDb db;
  oa::Wal wal(fs, opts);
  oa::RecoveryStats stats = wal.recover(db);
  EXPECT_TRUE(stats.checkpoint_loaded);
  EXPECT_EQ(stats.checkpoint_lsn + stats.replayed, 23u);
  EXPECT_LT(stats.replayed, 23u);  // the checkpoint did bound the replay
}

TEST(WalCheckpoint, CorruptNewestCheckpointFallsBackToOlderGeneration) {
  ou::MemFs fs;
  oa::WalOptions opts;
  opts.checkpoint_every = 4;
  std::string expected;
  {
    oa::MetadataDb db;
    oa::Wal wal(fs, opts);
    wal.recover(db);
    for (std::uint64_t i = 0; i < 17; ++i) scripted_op(db, 5, i);
    expected = db_bytes(db);
  }
  std::vector<std::string> checkpoints = fs.list("aero-wal/checkpoint-");
  ASSERT_EQ(checkpoints.size(), 2u);
  fs.flip_byte(checkpoints.back(), 40, 0x08);  // damage the newest

  oa::MetadataDb db;
  oa::Wal wal(fs, opts);
  oa::RecoveryStats stats = wal.recover(db);
  EXPECT_TRUE(stats.checkpoint_loaded);
  EXPECT_GE(stats.corrupt, 1u);
  // The older generation plus the (longer) WAL tail restores the exact
  // same state — segments since the older checkpoint were retained.
  EXPECT_EQ(db_bytes(db), expected);
}

TEST(WalCheckpoint, ExplicitCheckpointTruncatesReplay) {
  ou::MemFs fs;
  oa::MetadataDb db;
  oa::Wal wal(fs, oa::WalOptions{});
  wal.recover(db);
  for (std::uint64_t i = 0; i < 6; ++i) scripted_op(db, 9, i);
  wal.checkpoint();
  scripted_op(db, 9, 6);

  oa::MetadataDb db2;
  oa::Wal wal2(fs, oa::WalOptions{});
  oa::RecoveryStats stats = wal2.recover(db2);
  EXPECT_TRUE(stats.checkpoint_loaded);
  EXPECT_EQ(stats.checkpoint_lsn, 6u);
  EXPECT_EQ(stats.replayed, 1u);
  EXPECT_EQ(db_bytes(db2), db_bytes(db));
}

TEST(WalCheckpoint, ObservabilityCountersTrackWalActivity) {
  ou::MemFs fs;
  osprey::obs::MetricsRegistry metrics;
  oa::MetadataDb db;
  oa::Wal wal(fs, oa::WalOptions{}, &metrics);
  wal.recover(db);
  for (std::uint64_t i = 0; i < 4; ++i) scripted_op(db, 2, i);
  wal.checkpoint();
  EXPECT_EQ(metrics.counter("aero_wal_appends_total").value(), 4u);
  EXPECT_EQ(metrics.counter("aero_wal_checkpoints_total").value(), 1u);
  EXPECT_EQ(metrics.counter("aero_wal_recoveries_total").value(), 1u);
  EXPECT_GE(metrics.counter("aero_wal_fsyncs_total").value(), 5u);

  oa::MetadataDb db2;
  oa::Wal wal2(fs, oa::WalOptions{}, &metrics);
  wal2.recover(db2);
  EXPECT_EQ(metrics.counter("aero_wal_recoveries_total").value(), 2u);
  EXPECT_EQ(metrics.counter("aero_wal_replayed_records_total").value(), 0u);
}

// --- snapshot round-trip property (randomized records) ---------------

TEST(MetadataSnapshot, RandomizedRoundTripIsByteIdentical) {
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    oa::MetadataDb db;
    // The scripted ops routinely leave runs in flight, so the kRunning /
    // ended=-1 sentinel is exercised across the instances.
    for (std::uint64_t i = 0; i < 15 + seed % 10; ++i) {
      scripted_op(db, 1000 + seed, i);
    }
    std::string bytes = db.to_json().to_json();
    oa::MetadataDb restored =
        oa::MetadataDb::from_json(ou::Value::parse_json(bytes));
    EXPECT_EQ(restored.to_json().to_json(), bytes) << "seed " << seed;
    EXPECT_EQ(restored.uuid_state(), db.uuid_state()) << "seed " << seed;
    EXPECT_EQ(restored.provenance_dot(), db.provenance_dot())
        << "seed " << seed;
    // The restored db must CONTINUE identically: same uuid draws, same
    // version numbering, same run ids.
    scripted_op(db, 2000 + seed, 0);
    scripted_op(restored, 2000 + seed, 0);
    EXPECT_EQ(restored.to_json().to_json(), db.to_json().to_json())
        << "seed " << seed;
  }
}

TEST(MetadataSnapshot, InFlightRunSentinelRoundTrips) {
  oa::MetadataDb db;
  std::string in = db.register_object("in", "");
  db.add_version(in, "c", 1, 0, "e", "col", "p");
  db.start_run("flow", oa::FlowKind::kAnalysis, "t", {{in, 1}}, "ep", 42);
  oa::MetadataDb restored = oa::MetadataDb::from_json(db.to_json());
  EXPECT_EQ(restored.run(0).status, oa::RunStatus::kRunning);
  EXPECT_EQ(restored.run(0).ended, -1);
  EXPECT_EQ(restored.run(0).started, 42);
}

TEST(MetadataSnapshot, FormatOneSnapshotStillLoads) {
  oa::MetadataDb db;
  db.register_object("legacy", "flow");
  ou::Value snapshot = db.to_json();
  snapshot.as_object()["snapshot_format"] = ou::Value(std::int64_t{1});
  snapshot.as_object().erase("uuid_state");
  oa::MetadataDb restored = oa::MetadataDb::from_json(snapshot);
  EXPECT_EQ(restored.object_uuids().size(), 1u);
  // Format 1 never persisted generator state; the default seed is
  // restored, reproducing the old behaviour.
  EXPECT_EQ(restored.uuid_state(), oa::MetadataDb().uuid_state());
}

TEST(MetadataSnapshot, UnknownFormatThrows) {
  oa::MetadataDb db;
  ou::Value snapshot = db.to_json();
  snapshot.as_object()["snapshot_format"] = ou::Value(std::int64_t{99});
  EXPECT_THROW(oa::MetadataDb::from_json(snapshot), ou::InvalidArgument);
}
