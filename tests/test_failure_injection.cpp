/// Failure injection: flaky upstream feeds, injected transfer failures,
/// walltime kills — and the orchestration layer's recovery behaviour
/// (counted fetch errors, failed-run provenance, AERO retries).
/// Upstream outages are scripted on a fabric::FaultPlan (source-outage
/// windows), so the same chaos machinery drives unit and sweep tests.

#include <gtest/gtest.h>

#include "aero/server.hpp"
#include "util/log.hpp"
#include "util/error.hpp"

namespace oa = osprey::aero;
namespace of = osprey::fabric;
namespace ou = osprey::util;
using ou::kDay;
using ou::kHour;
using ou::kMinute;
using ou::kSecond;
using ou::Value;
using ou::ValueObject;

namespace {

Value identity_transform(const Value& args) {
  ValueObject out;
  out["output"] = args.at("input");
  return Value(std::move(out));
}

Value trivial_analysis(const Value& args) {
  ValueObject outputs;
  outputs["out.txt"] =
      Value("n=" + std::to_string(args.at("inputs").size()));
  ValueObject out;
  out["outputs"] = Value(std::move(outputs));
  return Value(std::move(out));
}

}  // namespace

class FailureInjectionTest : public ::testing::Test {
 protected:
  of::EventLoop loop;
  of::AuthService auth;
  of::TimerService timers{loop, auth};
  of::TransferService transfers{loop, auth, kSecond, 100.0e6};
  of::FlowsService flows{loop, auth};
  oa::AeroServer server{loop, auth, timers, transfers, flows};
  of::StorageEndpoint eagle{"eagle", loop, auth};
  of::StorageEndpoint scratch{"scratch", loop, auth};
  of::ComputeEndpoint login{"login", loop, auth, 2};
  std::string transform_fn, analysis_fn;

  void SetUp() override {
    osprey::util::set_log_level(osprey::util::LogLevel::kOff);
    eagle.create_collection("data", server.token());
    scratch.create_collection("staging", server.token());
    transform_fn =
        login.register_function("id", identity_transform, 10 * kSecond);
    analysis_fn =
        login.register_function("triv", trivial_analysis, 10 * kSecond);
  }

  void TearDown() override {
    osprey::util::set_log_level(osprey::util::LogLevel::kWarn);
  }

  oa::IngestionFlowSpec spec_with(std::shared_ptr<oa::DataSource> source,
                                  int max_retries = 0) {
    oa::IngestionFlowSpec spec;
    spec.name = "ing";
    spec.source = std::move(source);
    spec.poll_period = kDay;
    spec.compute = &login;
    spec.function_id = transform_fn;
    spec.staging = &scratch;
    spec.staging_collection = "staging";
    spec.storage = &eagle;
    spec.collection = "data";
    spec.base_path = "ing";
    spec.max_retries = max_retries;
    spec.retry_backoff = 10 * kMinute;
    return spec;
  }
};

TEST_F(FailureInjectionTest, FlakySourceDoesNotKillTheServer) {
  // The upstream feed is down for the first three days — scripted as a
  // source-outage window on the fault plan (formerly a bespoke
  // FlakySource that threw on those days).
  of::FaultPlan plan(7);
  plan.script_window(of::FaultKind::kSourceOutage, "ing", 0, 3 * kDay);
  server.set_fault_plan(&plan);
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://flaky/feed",
      std::vector<std::pair<of::SimTime, std::string>>{{0, "payload"}});
  auto handles = server.register_ingestion(spec_with(source));
  loop.run_until(5 * kDay);
  EXPECT_EQ(server.fetch_errors(), 3u);
  // Day 3's poll succeeded and ingested.
  EXPECT_EQ(server.updates_detected(), 1u);
  EXPECT_EQ(server.db().latest_version_number(handles.output_uuid), 1);
  // The outage shows up in the structured incident log.
  EXPECT_GE(plan.log().count(of::IncidentCategory::kFault), 1u);
}

TEST_F(FailureInjectionTest, InjectedTransferFailureFailsTheRun) {
  transfers.inject_failures(1.0, 99);  // every transfer fails
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://ok/feed", std::vector<std::pair<of::SimTime, std::string>>{
                             {0, "data"}});
  auto handles = server.register_ingestion(spec_with(source));
  loop.run_until(kDay);
  EXPECT_GE(server.failed_runs(), 1u);
  EXPECT_EQ(server.db().latest_version_number(handles.output_uuid), 0);
  EXPECT_GE(transfers.injected_failures(), 1u);
  // Provenance records the failure.
  bool saw_failed = false;
  for (const auto& run : server.db().runs()) {
    if (run.status == oa::RunStatus::kFailed) saw_failed = true;
  }
  EXPECT_TRUE(saw_failed);
}

TEST_F(FailureInjectionTest, RetrySucceedsAfterTransientFailures) {
  // ~40% of transfers fail; with retries the ingestion eventually lands.
  transfers.inject_failures(0.4, 7);
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://ok/feed", std::vector<std::pair<of::SimTime, std::string>>{
                             {0, "data"}});
  auto handles = server.register_ingestion(spec_with(source, /*retries=*/10));
  loop.run_until(2 * kDay);
  EXPECT_EQ(server.db().latest_version_number(handles.output_uuid), 1)
      << "retries: " << server.retries()
      << " failed: " << server.failed_runs();
  EXPECT_EQ(eagle.get("data", "ing/transformed", server.token()).bytes,
            "data");
}

TEST_F(FailureInjectionTest, AnalysisRetriesAfterComputeFailure) {
  // Analysis function fails the first two invocations, then succeeds.
  int calls = 0;
  std::string flaky_fn = login.register_function(
      "flaky",
      [&calls](const Value& args) -> Value {
        if (++calls <= 2) throw std::runtime_error("transient OOM");
        return trivial_analysis(args);
      },
      10 * kSecond);
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://ok/feed", std::vector<std::pair<of::SimTime, std::string>>{
                             {0, "data"}});
  auto handles = server.register_ingestion(spec_with(source));

  oa::AnalysisFlowSpec ana;
  ana.name = "ana";
  ana.input_uuids = {handles.output_uuid};
  ana.policy = oa::TriggerPolicy::kAny;
  ana.compute = &login;
  ana.function_id = flaky_fn;
  ana.staging = &scratch;
  ana.staging_collection = "staging";
  ana.storage = &eagle;
  ana.collection = "data";
  ana.base_path = "ana";
  ana.output_names = {"out.txt"};
  ana.max_retries = 3;
  ana.retry_backoff = 10 * kMinute;
  auto outputs = server.register_analysis(std::move(ana));

  loop.run_until(kDay);
  EXPECT_EQ(calls, 3);  // two failures + the successful retry
  EXPECT_EQ(server.db().latest_version_number(outputs[0]), 1);
  EXPECT_EQ(server.failed_runs(), 2u);
  EXPECT_EQ(server.retries(), 2u);
}

TEST_F(FailureInjectionTest, NoRetryBudgetMeansPermanentFailure) {
  std::string always_bad = login.register_function(
      "bad", [](const Value&) -> Value { throw std::runtime_error("no"); },
      kSecond);
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://ok/feed", std::vector<std::pair<of::SimTime, std::string>>{
                             {0, "data"}});
  oa::IngestionFlowSpec spec = spec_with(source, /*retries=*/0);
  spec.function_id = always_bad;
  auto handles = server.register_ingestion(std::move(spec));
  loop.run_until(kDay);
  EXPECT_EQ(server.db().latest_version_number(handles.output_uuid), 0);
  EXPECT_EQ(server.retries(), 0u);
  EXPECT_EQ(server.failed_runs(), 1u);
}

TEST(WalltimeKill, BatchTaskFailsAndJobTimesOut) {
  of::EventLoop loop;
  of::AuthService auth;
  of::BatchScheduler pbs(loop, 1);
  of::ComputeEndpoint compute("compute", loop, auth, pbs);
  compute.set_batch_walltime(kHour);
  std::string token = auth.issue_full_token("u");

  bool fn_ran = false;
  std::string fn = compute.register_function(
      "long-job",
      [&fn_ran](const Value&) {
        fn_ran = true;
        return Value(1);
      },
      3 * kHour);  // cost exceeds the 1h walltime

  osprey::util::set_log_level(osprey::util::LogLevel::kOff);
  bool saw_failure = false;
  of::SimTime completed_at = -1;
  compute.execute(fn, Value(ValueObject{}), token,
                  [&](const Value& result, const of::ComputeTaskRecord& rec) {
                    saw_failure = rec.status == of::ComputeTaskStatus::kFailed;
                    EXPECT_NE(rec.error.find("walltime"), std::string::npos);
                    EXPECT_TRUE(result.is_null());
                    completed_at = rec.completed;
                  });
  loop.run_all();
  osprey::util::set_log_level(osprey::util::LogLevel::kWarn);

  EXPECT_TRUE(saw_failure);
  EXPECT_FALSE(fn_ran);  // outputs never materialize
  EXPECT_EQ(completed_at, kHour);  // killed at the walltime
  // The scheduler's view agrees.
  ASSERT_EQ(pbs.jobs().size(), 1u);
  EXPECT_EQ(pbs.jobs()[0].state, of::JobState::kTimeout);
  EXPECT_EQ(pbs.jobs()[0].ended - pbs.jobs()[0].started, kHour);
}

TEST(WalltimeKill, WithinWalltimeSucceeds) {
  of::EventLoop loop;
  of::AuthService auth;
  of::BatchScheduler pbs(loop, 1);
  of::ComputeEndpoint compute("compute", loop, auth, pbs);
  compute.set_batch_walltime(kHour);
  std::string token = auth.issue_full_token("u");
  std::string fn = compute.register_function(
      "ok-job", [](const Value&) { return Value(7); }, 30 * kMinute);
  Value result;
  compute.execute(fn, Value(ValueObject{}), token,
                  [&](const Value& r, const of::ComputeTaskRecord& rec) {
                    result = r;
                    EXPECT_EQ(rec.status, of::ComputeTaskStatus::kSucceeded);
                  });
  loop.run_all();
  EXPECT_EQ(result.as_int(), 7);
  EXPECT_EQ(pbs.jobs()[0].state, of::JobState::kComplete);
}

TEST(TransferInjection, RateZeroNeverFails) {
  of::EventLoop loop;
  of::AuthService auth;
  of::StorageEndpoint a("a", loop, auth), b("b", loop, auth);
  of::TransferService transfers(loop, auth);
  std::string token = auth.issue_full_token("u");
  a.create_collection("c", token);
  b.create_collection("c", token);
  a.put("c", "x", "data", token);
  transfers.inject_failures(0.0, 1);
  for (int i = 0; i < 20; ++i) {
    transfers.transfer(a, "c", "x", b, "c", "x" + std::to_string(i), token);
  }
  loop.run_all();
  EXPECT_EQ(transfers.completed_count(), 20u);
  EXPECT_EQ(transfers.injected_failures(), 0u);
}

TEST(TransferInjection, RateIsApproximatelyHonored) {
  of::EventLoop loop;
  of::AuthService auth;
  of::StorageEndpoint a("a", loop, auth), b("b", loop, auth);
  of::TransferService transfers(loop, auth);
  std::string token = auth.issue_full_token("u");
  a.create_collection("c", token);
  b.create_collection("c", token);
  a.put("c", "x", "data", token);
  transfers.inject_failures(0.3, 42);
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    transfers.transfer(a, "c", "x", b, "c", "y" + std::to_string(i), token);
  }
  loop.run_all();
  double rate = static_cast<double>(transfers.injected_failures()) / n;
  EXPECT_NEAR(rate, 0.3, 0.08);
  EXPECT_EQ(transfers.completed_count() + transfers.injected_failures(),
            static_cast<std::size_t>(n));
}

TEST(TransferInjection, InvalidRateRejected) {
  of::EventLoop loop;
  of::AuthService auth;
  of::TransferService transfers(loop, auth);
  EXPECT_THROW(transfers.inject_failures(1.5, 1), ou::InvalidArgument);
  EXPECT_THROW(transfers.inject_failures(-0.1, 1), ou::InvalidArgument);
}

TEST(TransferInjection, CorruptedObjectIsNotAccepted) {
  of::EventLoop loop;
  of::AuthService auth;
  of::StorageEndpoint a("a", loop, auth), b("b", loop, auth);
  of::TransferService transfers(loop, auth);
  of::FaultPlan plan(3);
  plan.script_nth(of::FaultKind::kTransferCorrupt, "b", 0);
  transfers.set_fault_plan(&plan);
  std::string token = auth.issue_full_token("u");
  a.create_collection("c", token);
  b.create_collection("c", token);
  a.put("c", "x", "data", token);

  bool saw_mismatch = false;
  transfers.transfer(a, "c", "x", b, "c", "y", token,
                     [&](const of::TransferRecord& rec) {
                       saw_mismatch =
                           rec.status == of::TransferStatus::kFailed &&
                           rec.error.find("checksum mismatch") !=
                               std::string::npos;
                     });
  loop.run_all();
  EXPECT_TRUE(saw_mismatch);
  // The corrupted bytes never landed at the destination.
  EXPECT_THROW(b.get("c", "y", token), ou::NotFound);
  EXPECT_EQ(plan.injected(of::FaultKind::kTransferCorrupt), 1u);
  EXPECT_GE(plan.log().count(of::IncidentCategory::kRecovery), 1u);

  // A clean re-transfer of the same object is accepted.
  bool ok = false;
  transfers.transfer(a, "c", "x", b, "c", "y", token,
                     [&](const of::TransferRecord& rec) {
                       ok = rec.status == of::TransferStatus::kSucceeded;
                     });
  loop.run_all();
  EXPECT_TRUE(ok);
  EXPECT_EQ(b.get("c", "y", token).bytes, "data");
}

TEST_F(FailureInjectionTest, CorruptedTransferIsRejectedAndRetried) {
  of::FaultPlan plan(11);
  // Corrupt the first transfer landing at 'eagle'; the retry's
  // transfers are clean.
  plan.script_nth(of::FaultKind::kTransferCorrupt, "eagle", 0);
  transfers.set_fault_plan(&plan);
  server.set_fault_plan(&plan);
  auto source = std::make_shared<oa::ScriptedSource>(
      "https://ok/feed", std::vector<std::pair<of::SimTime, std::string>>{
                             {0, "data"}});
  auto handles = server.register_ingestion(spec_with(source, /*retries=*/3));
  loop.run_until(kDay);
  // Digest verification rejected the corrupted object; the retry landed
  // the pristine bytes end to end.
  EXPECT_EQ(server.db().latest_version_number(handles.output_uuid), 1);
  EXPECT_EQ(eagle.get("data", "ing/transformed", server.token()).bytes,
            "data");
  EXPECT_GE(server.retries(), 1u);
  EXPECT_GE(server.failed_runs(), 1u);
  EXPECT_EQ(plan.injected(of::FaultKind::kTransferCorrupt), 1u);
  bool saw_rejection = false;
  for (const auto& inc : plan.log().incidents()) {
    if (inc.kind == "corrupt-payload-rejected") saw_rejection = true;
  }
  EXPECT_TRUE(saw_rejection);
}
