#include "epi/metarvm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "epi/seir.hpp"
#include "num/stats.hpp"
#include "util/error.hpp"

namespace oe = osprey::epi;
namespace on = osprey::num;

namespace {

oe::MetaRvmTrajectory run_single(std::int64_t pop, std::int64_t seed_inf,
                                 const oe::MetaRvmParams& params,
                                 std::uint64_t seed, int days = 90) {
  oe::MetaRvm model(oe::MetaRvmConfig::single_group(pop, seed_inf, days));
  on::RngStream rng(seed);
  return model.run(params, rng);
}

}  // namespace

TEST(MetaRvm, PopulationConservedEachDay) {
  // (The model itself asserts conservation; this exercises it across a
  // parameter mix including reinfection and vaccination.)
  oe::MetaRvmConfig cfg = oe::MetaRvmConfig::single_group(100000, 50, 120);
  cfg.groups[0].vax_rate_per_day = 0.005;
  oe::MetaRvmParams p;
  p.dr = 60.0;  // reinfection on
  oe::MetaRvm model(cfg);
  on::RngStream rng(1);
  oe::MetaRvmTrajectory traj = model.run(p, rng);
  for (const auto& day : traj.groups[0].daily) {
    EXPECT_EQ(day.total(), 100000);
  }
}

TEST(MetaRvm, DeterministicGivenSeed) {
  oe::MetaRvmParams p;
  auto a = run_single(50000, 20, p, 42);
  auto b = run_single(50000, 20, p, 42);
  auto c = run_single(50000, 20, p, 43);
  EXPECT_EQ(a.total_hospitalizations(), b.total_hospitalizations());
  EXPECT_EQ(a.total_infections(), b.total_infections());
  // Different seed virtually surely differs in infections.
  EXPECT_NE(a.total_infections(), c.total_infections());
}

TEST(MetaRvm, HospitalizationQoiUsesReplicateSubstreams) {
  oe::MetaRvm model(oe::MetaRvmConfig::single_group(50000, 20, 90));
  oe::MetaRvmParams p;
  double q0 = model.hospitalization_qoi(p, 7, 0);
  double q0_again = model.hospitalization_qoi(p, 7, 0);
  double q1 = model.hospitalization_qoi(p, 7, 1);
  EXPECT_DOUBLE_EQ(q0, q0_again);
  EXPECT_NE(q0, q1);
}

TEST(MetaRvm, NoTransmissionWithZeroRates) {
  oe::MetaRvmParams p;
  p.ts = 0.0;
  p.tv = 0.0;
  auto traj = run_single(10000, 10, p, 3);
  EXPECT_EQ(traj.total_infections(), 0);
}

TEST(MetaRvm, NoEpidemicWithoutSeeds) {
  oe::MetaRvmParams p;
  auto traj = run_single(10000, 0, p, 3);
  EXPECT_EQ(traj.total_infections(), 0);
  EXPECT_EQ(traj.total_hospitalizations(), 0);
  EXPECT_EQ(traj.total_deaths(), 0);
}

TEST(MetaRvm, HigherTransmissionMoreHospitalizations) {
  oe::MetaRvmParams lo;
  lo.ts = 0.15;
  oe::MetaRvmParams hi;
  hi.ts = 0.7;
  // Average over replicates to wash out stochastic noise.
  oe::MetaRvm model(oe::MetaRvmConfig::single_group(100000, 50, 90));
  double lo_sum = 0.0, hi_sum = 0.0;
  for (std::uint64_t r = 0; r < 5; ++r) {
    lo_sum += model.hospitalization_qoi(lo, 11, r);
    hi_sum += model.hospitalization_qoi(hi, 11, r);
  }
  EXPECT_GT(hi_sum, 2.0 * lo_sum);
}

TEST(MetaRvm, MorePshMoreHospitalizations) {
  oe::MetaRvmParams lo;
  lo.psh = 0.1;
  oe::MetaRvmParams hi;
  hi.psh = 0.4;
  oe::MetaRvm model(oe::MetaRvmConfig::single_group(100000, 50, 90));
  double lo_sum = 0.0, hi_sum = 0.0;
  for (std::uint64_t r = 0; r < 5; ++r) {
    lo_sum += model.hospitalization_qoi(lo, 13, r);
    hi_sum += model.hospitalization_qoi(hi, 13, r);
  }
  EXPECT_GT(hi_sum, 1.5 * lo_sum);
}

TEST(MetaRvm, DeathsOnlyFromHospital) {
  oe::MetaRvmParams p;
  p.phd = 0.0;
  auto traj = run_single(50000, 30, p, 5);
  EXPECT_EQ(traj.total_deaths(), 0);
  EXPECT_EQ(traj.groups[0].daily.back().d, 0);
}

TEST(MetaRvm, VaccinationReducesInfections) {
  oe::MetaRvmConfig no_vax = oe::MetaRvmConfig::single_group(100000, 50, 120);
  oe::MetaRvmConfig vax = no_vax;
  vax.groups[0].vax_rate_per_day = 0.03;  // aggressive campaign
  oe::MetaRvmParams p;
  p.ts = 0.35;
  p.tv = 0.05;
  p.ve = 0.8;
  double no_vax_sum = 0.0, vax_sum = 0.0;
  oe::MetaRvm m1(no_vax), m2(vax);
  for (std::uint64_t r = 0; r < 5; ++r) {
    on::RngStream rng1 = on::RngStream(17).substream(r);
    on::RngStream rng2 = on::RngStream(17).substream(r);
    no_vax_sum += static_cast<double>(m1.run(p, rng1).total_infections());
    vax_sum += static_cast<double>(m2.run(p, rng2).total_infections());
  }
  EXPECT_LT(vax_sum, 0.8 * no_vax_sum);
}

TEST(MetaRvm, ApproachesSeirMeanForLargePopulation) {
  // With tv=ve=0 paths disabled, psh=0, pea=0 and matched durations the
  // expected dynamics reduce to an SEIR with beta=ts (Ia/Ip collapse).
  oe::MetaRvmParams p;
  p.ts = 0.4;
  p.pea = 0.0;    // everyone goes E -> Ip -> Is
  p.psh = 0.0;    // no hospital branch
  p.de = 3.0;
  p.dp = 0.0001;  // Ip drains every day -> exactly one infectious day
  p.ds = 5.0;
  p.dr = 0.0;
  auto traj = run_single(2'000'000, 2000, p, 23, 150);

  oe::SeirParams sp;
  sp.beta = 0.4;
  sp.de = 3.0;
  sp.di = 6.0;  // 1 day in Ip (daily stepping) + 5 days in Is
  oe::SeirState init{2'000'000.0 - 2000.0, 0.0, 2000.0, 0.0};
  oe::SeirTrajectory seir = oe::run_seir(sp, init, 150);

  double stoch_attack =
      static_cast<double>(traj.total_infections()) / 2.0e6;
  double det_attack = seir.states.back().r / 2.0e6;
  // Chain-binomial daily stepping vs continuous ODE: expect agreement
  // within a few percentage points of attack rate.
  EXPECT_NEAR(stoch_attack, det_attack, 0.08);
}

TEST(MetaRvm, StratifiedGroupsInteract) {
  oe::MetaRvmConfig cfg = oe::MetaRvmConfig::stratified_demo(300000, 120);
  // Seed only in adults; children/seniors must still get infected via
  // cross-group contacts.
  cfg.groups[0].initial_infections = 0;
  cfg.groups[2].initial_infections = 0;
  ASSERT_GT(cfg.groups[1].initial_infections, 0);
  oe::MetaRvm model(cfg);
  on::RngStream rng(31);
  oe::MetaRvmParams p;
  p.ts = 0.5;
  auto traj = model.run(p, rng);
  std::int64_t child_inf = 0;
  for (std::int64_t x : traj.groups[0].new_infections) child_inf += x;
  std::int64_t senior_inf = 0;
  for (std::int64_t x : traj.groups[2].new_infections) senior_inf += x;
  EXPECT_GT(child_inf, 0);
  EXPECT_GT(senior_inf, 0);
}

TEST(MetaRvm, ParamValidation) {
  oe::MetaRvmParams p;
  p.pea = 1.5;
  oe::MetaRvm model(oe::MetaRvmConfig::single_group(1000, 1, 10));
  on::RngStream rng(1);
  EXPECT_THROW(model.run(p, rng), osprey::util::InvalidArgument);
  p = oe::MetaRvmParams{};
  p.de = 0.0;
  EXPECT_THROW(model.run(p, rng), osprey::util::InvalidArgument);
}

TEST(MetaRvm, ConfigValidation) {
  oe::MetaRvmConfig cfg;
  EXPECT_THROW(oe::MetaRvm{cfg}, osprey::util::InvalidArgument);
  cfg = oe::MetaRvmConfig::single_group(100, 200, 10);  // seeds > pop
  EXPECT_THROW(oe::MetaRvm{cfg}, osprey::util::InvalidArgument);
}

TEST(MetaRvm, TrajectoryAccountingConsistent) {
  auto traj = run_single(80000, 40, oe::MetaRvmParams{}, 9);
  // Cumulative deaths equal the final D compartment.
  EXPECT_EQ(traj.total_deaths(), traj.groups[0].daily.back().d);
  // Daily hospitalization series sums to the QoI.
  std::int64_t sum = 0;
  for (std::int64_t x : traj.total_new_hospitalizations()) sum += x;
  EXPECT_EQ(sum, traj.total_hospitalizations());
}
