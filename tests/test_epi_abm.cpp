#include "epi/abm.hpp"

#include <gtest/gtest.h>

#include "num/stats.hpp"
#include "util/error.hpp"

namespace oe = osprey::epi;
namespace on = osprey::num;

namespace {

oe::MetaRvmTrajectory run_abm(const oe::AbmConfig& cfg,
                              const oe::MetaRvmParams& params,
                              std::uint64_t seed) {
  oe::AgentBasedModel model(cfg);
  on::RngStream rng(seed);
  return model.run(params, rng);
}

}  // namespace

TEST(Abm, ConservesAgentsAndProducesEpidemic) {
  oe::AbmConfig cfg;
  cfg.n_agents = 10'000;
  cfg.initial_infections = 20;
  cfg.days = 90;
  oe::MetaRvmParams params;
  params.ts = 0.4;
  oe::MetaRvmTrajectory traj = run_abm(cfg, params, 1);
  for (const auto& day : traj.groups[0].daily) {
    EXPECT_EQ(day.total(), cfg.n_agents);
  }
  EXPECT_GT(traj.total_infections(), 500);
  EXPECT_GT(traj.total_hospitalizations(), 0);
}

TEST(Abm, DeterministicPerSeed) {
  oe::AbmConfig cfg;
  cfg.n_agents = 5'000;
  cfg.initial_infections = 10;
  cfg.days = 60;
  oe::MetaRvmParams params;
  auto a = run_abm(cfg, params, 42);
  auto b = run_abm(cfg, params, 42);
  auto c = run_abm(cfg, params, 43);
  EXPECT_EQ(a.groups[0].new_infections, b.groups[0].new_infections);
  EXPECT_EQ(a.total_hospitalizations(), b.total_hospitalizations());
  // Different seeds: the daily series virtually surely differ (totals
  // alone can coincide).
  EXPECT_NE(a.groups[0].new_infections, c.groups[0].new_infections);
}

TEST(Abm, NoTransmissionAtZeroRate) {
  oe::AbmConfig cfg;
  cfg.n_agents = 2'000;
  cfg.initial_infections = 10;
  cfg.days = 60;
  oe::MetaRvmParams params;
  params.ts = 0.0;
  params.tv = 0.0;
  auto traj = run_abm(cfg, params, 2);
  EXPECT_EQ(traj.total_infections(), 0);
}

TEST(Abm, VaccinationProtects) {
  oe::AbmConfig no_vax;
  no_vax.n_agents = 20'000;
  no_vax.initial_infections = 20;
  no_vax.days = 120;
  oe::AbmConfig vax = no_vax;
  vax.vax_rate_per_day = 0.03;
  oe::MetaRvmParams params;
  params.ts = 0.35;
  params.tv = 0.05;
  params.ve = 0.8;
  double base = 0.0, protected_total = 0.0;
  for (std::uint64_t r = 0; r < 3; ++r) {
    base += static_cast<double>(
        oe::AgentBasedModel(no_vax)
            .run(params, *std::make_unique<on::RngStream>(
                             on::RngStream(9).substream(r)))
            .total_infections());
    protected_total += static_cast<double>(
        oe::AgentBasedModel(vax)
            .run(params, *std::make_unique<on::RngStream>(
                             on::RngStream(9).substream(r)))
            .total_infections());
  }
  EXPECT_LT(protected_total, 0.8 * base);
}

TEST(Abm, AgreesWithMetaRvmMeanField) {
  // Same parameters, same population size: the ABM's attack rate should
  // track the chain-binomial metapopulation model's (both approximate
  // the same mean field).
  const std::int64_t pop = 50'000;
  oe::MetaRvmParams params;
  params.ts = 0.4;
  oe::AbmConfig acfg;
  acfg.n_agents = pop;
  acfg.initial_infections = 50;
  acfg.days = 120;
  oe::MetaRvm meta(oe::MetaRvmConfig::single_group(pop, 50, 120));

  double abm_attack = 0.0, meta_attack = 0.0;
  for (std::uint64_t r = 0; r < 3; ++r) {
    on::RngStream rng_a = on::RngStream(5).substream(r);
    abm_attack += static_cast<double>(
                      oe::AgentBasedModel(acfg).run(params, rng_a)
                          .total_infections()) /
                  static_cast<double>(pop);
    on::RngStream rng_m = on::RngStream(6).substream(r);
    meta_attack += static_cast<double>(
                       meta.run(params, rng_m).total_infections()) /
                   static_cast<double>(pop);
  }
  abm_attack /= 3.0;
  meta_attack /= 3.0;
  EXPECT_NEAR(abm_attack, meta_attack, 0.10);
  EXPECT_GT(abm_attack, 0.3);  // a real epidemic happened in both
}

TEST(Abm, QoiUsesReplicateSubstreams) {
  oe::AbmConfig cfg;
  cfg.n_agents = 5'000;
  cfg.initial_infections = 10;
  cfg.days = 45;
  oe::AgentBasedModel model(cfg);
  oe::MetaRvmParams params;
  EXPECT_DOUBLE_EQ(model.hospitalization_qoi(params, 3, 0),
                   model.hospitalization_qoi(params, 3, 0));
  EXPECT_NE(model.hospitalization_qoi(params, 3, 0),
            model.hospitalization_qoi(params, 3, 1));
}

TEST(Abm, ConfigValidation) {
  oe::AbmConfig cfg;
  cfg.n_agents = 0;
  EXPECT_THROW(oe::AgentBasedModel{cfg}, osprey::util::InvalidArgument);
  cfg = oe::AbmConfig{};
  cfg.initial_infections = cfg.n_agents + 1;
  EXPECT_THROW(oe::AgentBasedModel{cfg}, osprey::util::InvalidArgument);
  cfg = oe::AbmConfig{};
  cfg.contacts_per_day = 0.0;
  EXPECT_THROW(oe::AgentBasedModel{cfg}, osprey::util::InvalidArgument);
}
