// NEGATIVE compile check — this file must NOT compile under
// -Werror=thread-safety. Mirrors the serve::ResultCache internals
// pattern (an entries map owned by the cache): if the cache ever grows
// a mutex for concurrent lookups, an access that bypasses it must be
// rejected by the analysis, not silently accepted.

#include <map>
#include <string>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace {

struct ResultCacheShape {
  struct Entry {
    std::string payload;
    long version = 0;
  };

  mutable osprey::util::Mutex mutex;
  std::map<std::string, Entry> entries OSPREY_GUARDED_BY(mutex);

  // error: reading 'entries' requires holding mutex 'mutex'
  std::size_t size_unguarded() const { return entries.size(); }

  std::size_t size_guarded() const {
    osprey::util::MutexLock lock(mutex);
    return entries.size();  // correct access, must stay warning-free
  }
};

}  // namespace

int main() {
  ResultCacheShape cache;
  return static_cast<int>(cache.size_unguarded() + cache.size_guarded());
}
