// NEGATIVE compile check — this file must NOT compile under
// -Werror=thread-safety. tests/CMakeLists.txt try_compile()s it when
// OSPREY_THREAD_SAFETY is ON under Clang and aborts the configure if it
// unexpectedly succeeds, proving the annotations actually reject
// unguarded access rather than expanding to nothing.

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace {

struct Counter {
  osprey::util::Mutex mutex;
  int value OSPREY_GUARDED_BY(mutex) = 0;

  // error: writing 'value' requires holding mutex 'mutex'
  void bump_unguarded() { ++value; }

  int read_guarded() {
    osprey::util::MutexLock lock(mutex);
    return value;  // correct access, must stay warning-free
  }
};

}  // namespace

int main() {
  Counter c;
  c.bump_unguarded();
  return c.read_guarded();
}
