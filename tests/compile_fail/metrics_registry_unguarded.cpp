// NEGATIVE compile check — this file must NOT compile under
// -Werror=thread-safety. Mirrors the obs::MetricsRegistry internals:
// instrument maps guarded by the registry mutex plus an
// OSPREY_REQUIRES-annotated locked helper. Calling that helper without
// holding the mutex must be rejected by the analysis.

#include <map>
#include <memory>
#include <string>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace {

struct RegistryShape {
  mutable osprey::util::Mutex mutex;
  std::map<std::string, std::unique_ptr<int>> counters
      OSPREY_GUARDED_BY(mutex);

  bool has_locked(const std::string& name) const OSPREY_REQUIRES(mutex) {
    return counters.count(name) != 0;
  }

  // error: calling 'has_locked' requires holding mutex 'mutex'
  bool has_unguarded(const std::string& name) const {
    return has_locked(name);
  }

  bool has_guarded(const std::string& name) const {
    osprey::util::MutexLock lock(mutex);
    return has_locked(name);  // correct access, must stay warning-free
  }
};

}  // namespace

int main() {
  RegistryShape registry;
  return registry.has_unguarded("x") || registry.has_guarded("x") ? 0 : 1;
}
