#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "util/sim_time.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/uuid.hpp"

namespace ou = osprey::util;

TEST(StringUtil, SplitKeepsEmptyFields) {
  EXPECT_EQ(ou::split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(ou::split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtil, JoinInvertsSplit) {
  std::vector<std::string> pieces{"x", "y", "z"};
  EXPECT_EQ(ou::split(ou::join(pieces, "-"), '-'), pieces);
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(ou::trim("  hi \t\n"), "hi");
  EXPECT_EQ(ou::trim(""), "");
  EXPECT_EQ(ou::trim("   "), "");
  EXPECT_EQ(ou::trim("a b"), "a b");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(ou::starts_with("prefix-rest", "prefix"));
  EXPECT_FALSE(ou::starts_with("pre", "prefix"));
}

TEST(StringUtil, Format) {
  EXPECT_EQ(ou::format("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(ou::format("%s", ""), "");
}

TEST(Uuid, CanonicalShape) {
  ou::UuidFactory factory(1);
  std::string u = factory.next();
  EXPECT_TRUE(ou::looks_like_uuid(u)) << u;
  EXPECT_EQ(u[14], '4');  // version nibble
}

TEST(Uuid, DeterministicPerSeed) {
  ou::UuidFactory a(99), b(99), c(100);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Uuid, NoCollisionsInSequence) {
  ou::UuidFactory factory(7);
  std::set<std::string> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(factory.next()).second);
  }
}

TEST(Uuid, LooksLikeUuidRejectsBadShapes) {
  EXPECT_FALSE(ou::looks_like_uuid(""));
  EXPECT_FALSE(ou::looks_like_uuid("not-a-uuid"));
  EXPECT_FALSE(ou::looks_like_uuid(
      "3f2a9c1e-7b4d-4e8a-9c3f-1a2b3c4d5e6g"));  // 'g' not hex
  EXPECT_FALSE(ou::looks_like_uuid(
      "3f2a9c1e07b4d-4e8a-9c3f-1a2b3c4d5e6f"));  // dash misplaced
}

TEST(SimTime, Formatting) {
  ou::SimTime t = 3 * ou::kDay + 7 * ou::kHour + 30 * ou::kMinute +
                  15 * ou::kSecond + 250;
  EXPECT_EQ(ou::format_sim_time(t), "d003 07:30:15.250");
  EXPECT_EQ(ou::sim_day(t), 3);
}

TEST(SimTime, DurationFormatting) {
  EXPECT_EQ(ou::format_duration(500), "500ms");
  EXPECT_EQ(ou::format_duration(45 * ou::kSecond), "45.0s");
  EXPECT_EQ(ou::format_duration(90 * ou::kSecond), "1.5m");
  EXPECT_EQ(ou::format_duration(3 * ou::kHour), "3.0h");
  EXPECT_EQ(ou::format_duration(36 * ou::kHour), "1.5d");
}

TEST(TextTable, AlignsColumns) {
  ou::TextTable t({"name", "n"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "22"});
  std::string rendered = t.render();
  EXPECT_NE(rendered.find("a-much-longer-name  22"), std::string::npos);
  EXPECT_NE(rendered.find("----"), std::string::npos);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(ou::TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(ou::TextTable::num(-0.5, 3), "-0.500");
}

TEST(TextTable, RowWidthMismatchThrows) {
  ou::TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), osprey::util::InvalidArgument);
}

// --- pluggable log sink (util/log.hpp) ---

#include "util/log.hpp"

TEST(LogSink, SwapCapturesLinesAndRestoreReturnsPrevious) {
  ou::LogLevel old_level = ou::log_level();
  ou::set_log_level(ou::LogLevel::kInfo);
  std::vector<std::string> captured;
  ou::LogSink previous = ou::set_log_sink(
      [&captured](ou::LogLevel level, const std::string& component,
                  const std::string& message) {
        captured.push_back(ou::level_name(level) + std::string(":") +
                           component + ":" + message);
      });
  OSPREY_LOG_INFO("test", "hello " << 42);
  OSPREY_LOG_WARN("other", "warned");
  // Restore the default stderr sink; the previous sink comes back so
  // callers can re-install an outer sink they displaced.
  ou::LogSink displaced = ou::set_log_sink(std::move(previous));
  EXPECT_TRUE(static_cast<bool>(displaced));
  OSPREY_LOG_INFO("test", "not captured");
  ou::set_log_level(old_level);

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "INFO:test:hello 42");
  EXPECT_EQ(captured[1], "WARN:other:warned");
}
