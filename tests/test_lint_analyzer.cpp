// Unit tests for the osprey_lint whole-program analyzer over in-memory
// fixtures: tokenizer edge cases (the comment/raw-string false-positive
// regression), layering and cycle detection, determinism-taint call
// chains, and --diff-base subsetting.

#include "lint/analyzer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "lint/layers.hpp"
#include "lint/lexer.hpp"

namespace ol = osprey::lint;

namespace {

ol::LayerConfig test_layers() {
  std::vector<std::string> errors;
  ol::LayerConfig config = ol::parse_layers(
      "layer util =\n"
      "layer obs = util\n"
      "layer fabric = obs util\n"
      "layer serve = fabric obs util\n"
      "taint-entry fabric\n"
      "taint-entry serve\n"
      "taint-barrier src/util/clock.\n",
      errors);
  EXPECT_TRUE(errors.empty());
  return config;
}

std::vector<ol::Finding> run_rule(ol::Analyzer& a, const std::string& rule,
                                  ol::AnalyzerOptions opts = {}) {
  std::vector<ol::Finding> found;
  for (ol::Finding& f : a.run(opts)) {
    if (f.rule == rule) found.push_back(std::move(f));
  }
  return found;
}

// --- Lexer ----------------------------------------------------------------

TEST(LintLexer, TokensSkipCommentsAndStrings) {
  ol::LexedFile lexed = ol::lex(
      "int x = 0; // rand()\n"
      "/* std::thread t; */\n"
      "const char* s = \"srand(7)\";\n");
  for (const ol::Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "thread");
    EXPECT_NE(t.text, "srand");
  }
}

TEST(LintLexer, RawStringWithCustomDelimiter) {
  ol::LexedFile lexed = ol::lex(
      "auto s = R\"ab(rand() \")\" still inside)ab\";\n"
      "int after = 1;\n");
  bool saw_after = false;
  for (const ol::Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "rand");
    if (t.text == "after") saw_after = true;
  }
  EXPECT_TRUE(saw_after);
}

TEST(LintLexer, IncludeDirectivesCaptured) {
  ol::LexedFile lexed = ol::lex(
      "#include \"util/log.hpp\"\n"
      "#include <vector>\n");
  ASSERT_EQ(lexed.includes.size(), 2u);
  EXPECT_EQ(lexed.includes[0].path, "util/log.hpp");
  EXPECT_FALSE(lexed.includes[0].angled);
  EXPECT_TRUE(lexed.includes[1].angled);
}

TEST(LintLexer, AllowMarksParsed) {
  ol::LexedFile lexed = ol::lex(
      "// osprey-lint: allow(rng) reason\n"
      "// osprey-lint: allow(adhoc-counter) grandfathered pre-obs\n");
  ASSERT_EQ(lexed.allows.size(), 2u);
  EXPECT_EQ(lexed.allows[0].rule, "rng");
  EXPECT_FALSE(lexed.allows[0].grandfathered);
  EXPECT_EQ(lexed.allows[1].rule, "adhoc-counter");
  EXPECT_TRUE(lexed.allows[1].grandfathered);
}

// --- Token rules ----------------------------------------------------------

// Regression: v1 flagged `#include "../x.hpp"` quoted inside block
// comments and raw strings. The lexer only records real directives.
TEST(LintAnalyzer, RelativeIncludeIgnoresCommentsAndRawStrings) {
  ol::Analyzer a(test_layers());
  a.add_file("src/util/doc.hpp",
             "/* example of what NOT to write:\n"
             "#include \"../fabric/event_loop.hpp\"\n"
             "*/\n"
             "const char* snippet = R\"(\n"
             "#include \"../util/log.hpp\"\n"
             ")\";\n");
  EXPECT_TRUE(run_rule(a, "relative-include").empty());

  a.add_file("src/util/bad.hpp", "#include \"../util/log.hpp\"\n");
  std::vector<ol::Finding> found = run_rule(a, "relative-include");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].file, "src/util/bad.hpp");
  EXPECT_EQ(found[0].line, 1u);
}

TEST(LintAnalyzer, RngRuleAndAllowCoverage) {
  ol::Analyzer a(test_layers());
  a.add_file("src/util/a.cpp",
             "int f() { return rand(); }\n"
             "// osprey-lint: allow(rng) test fixture\n"
             "int g() { return rand(); }\n");
  std::vector<ol::Finding> found = run_rule(a, "rng");
  ASSERT_EQ(found.size(), 1u);  // line 3 is covered by the allow
  EXPECT_EQ(found[0].line, 1u);
}

TEST(LintAnalyzer, AdhocCounterInFabric) {
  ol::Analyzer a(test_layers());
  a.add_file("src/fabric/svc.hpp",
             "class Svc {\n"
             "  std::size_t completed_ = 0;\n"
             "  std::size_t limit_ = 0;\n"  // not a counter name
             "};\n");
  std::vector<ol::Finding> found = run_rule(a, "adhoc-counter");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].line, 2u);
}

TEST(LintAnalyzer, WalBypassFlagsDirectMetadataMutation) {
  ol::Analyzer a(test_layers());
  a.add_file("src/aero/db.cpp",
             "void f() { runs_.push_back(r); }\n"
             "void g() { objects_.emplace(k, v); }\n"
             "int h() { return runs_.size(); }\n"      // read: passes
             "auto i() { return objects_.find(k); }\n"  // read: passes
             "// osprey-lint: allow(wal-bypass) sanctioned apply() site\n"
             "void j() { runs_.clear(); }\n");
  std::vector<ol::Finding> found = run_rule(a, "wal-bypass");
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].line, 1u);
  EXPECT_EQ(found[1].line, 2u);
}

TEST(LintAnalyzer, WalBypassScopedToAeroModule) {
  ol::Analyzer a(test_layers());
  // Identical token stream outside src/aero — other modules may name
  // their own members runs_/objects_ without implying a WAL contract.
  a.add_file("src/fabric/svc.cpp", "void f() { runs_.push_back(r); }\n");
  EXPECT_TRUE(run_rule(a, "wal-bypass").empty());
}

TEST(LintAnalyzer, ShardIsolationFlagsOrchestrationState) {
  ol::Analyzer a(test_layers());
  a.add_file("src/shard/fabric.cpp",
             "void f(aero::AeroServer& s) { s.serve_latest(u); }\n"
             "aero::MetadataDb* db();\n"
             "fabric::FlowsService* flows();\n"
             "int envelope_count();\n");
  std::vector<ol::Finding> found = run_rule(a, "shard-isolation");
  // Line 1 carries two references (AeroServer + serve_latest).
  ASSERT_EQ(found.size(), 4u);
  EXPECT_EQ(found[0].line, 1u);
  EXPECT_EQ(found[1].line, 1u);
  EXPECT_EQ(found[2].line, 2u);
  EXPECT_EQ(found[3].line, 3u);
}

TEST(LintAnalyzer, ShardIsolationExemptsPartitionAndHonorsAllow) {
  ol::Analyzer a(test_layers());
  // partition.* is the sanctioned owner of per-partition state.
  a.add_file("src/shard/partition.cpp",
             "void f(aero::AeroServer& s) { s.serve_latest(u); }\n");
  a.add_file("src/shard/partition.hpp", "aero::MetadataDb* db();\n");
  // Other modules may mention the types freely.
  a.add_file("src/serve/front.cpp", "aero::AeroServer* origin();\n");
  a.add_file("src/shard/mailbox.cpp",
             "// osprey-lint: allow(shard-isolation) test fixture\n"
             "aero::MetadataDb* sanctioned();\n");
  EXPECT_TRUE(run_rule(a, "shard-isolation").empty());
}

TEST(LintAnalyzer, StaleSuppressionFiresAndCannotBeSuppressed) {
  ol::Analyzer a(test_layers());
  a.add_file("src/fabric/old.hpp",
             "class Old {\n"
             "  // osprey-lint: allow(adhoc-counter) grandfathered legacy\n"
             "  std::size_t completed_ = 0;\n"
             "};\n");
  // The grandfathered allow still suppresses adhoc-counter itself...
  EXPECT_TRUE(run_rule(a, "adhoc-counter").empty());
  // ...but is itself reported, and stays reported even if someone tries
  // to allow(stale-suppression) it.
  ASSERT_EQ(run_rule(a, "stale-suppression").size(), 1u);
  a.add_file("src/fabric/old.hpp",
             "class Old {\n"
             "  // osprey-lint: allow(stale-suppression)\n"
             "  // osprey-lint: allow(adhoc-counter) grandfathered legacy\n"
             "  std::size_t completed_ = 0;\n"
             "};\n");
  EXPECT_EQ(run_rule(a, "stale-suppression").size(), 1u);
}

TEST(LintAnalyzer, TestRegistration) {
  ol::Analyzer a(test_layers());
  a.add_file("tests/test_registered.cpp", "int x;\n");
  a.add_file("tests/test_orphan.cpp", "int y;\n");
  a.set_test_registry("add_executable(t tests/test_registered.cpp)\n");
  std::vector<ol::Finding> found = run_rule(a, "test-registration");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].file, "tests/test_orphan.cpp");
}

// --- Layering -------------------------------------------------------------

TEST(LintAnalyzer, LayeringRejectsUndeclaredEdge) {
  ol::Analyzer a(test_layers());
  a.add_file("src/obs/metrics.hpp", "#include \"fabric/loop.hpp\"\n");
  a.add_file("src/fabric/loop.hpp", "int x;\n");
  std::vector<ol::Finding> found = run_rule(a, "layering");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].file, "src/obs/metrics.hpp");
  EXPECT_NE(found[0].message.find("'obs'"), std::string::npos);
  EXPECT_NE(found[0].message.find("'fabric'"), std::string::npos);
}

TEST(LintAnalyzer, LayeringAcceptsDeclaredEdgeAndHonorsAllow) {
  ol::Analyzer a(test_layers());
  a.add_file("src/fabric/loop.hpp", "#include \"obs/trace.hpp\"\n");
  a.add_file("src/obs/trace.hpp", "int x;\n");
  EXPECT_TRUE(run_rule(a, "layering").empty());

  a.add_file("src/obs/bridge.hpp",
             "// osprey-lint: allow(layering) deliberate adapter\n"
             "#include \"fabric/loop.hpp\"\n");
  EXPECT_TRUE(run_rule(a, "layering").empty());
}

TEST(LintAnalyzer, IncludeCycleReportedWithChain) {
  ol::Analyzer a(test_layers());
  a.add_file("src/util/a.hpp", "#include \"util/b.hpp\"\n");
  a.add_file("src/util/b.hpp", "#include \"util/c.hpp\"\n");
  a.add_file("src/util/c.hpp", "#include \"util/a.hpp\"\n");
  std::vector<ol::Finding> found = run_rule(a, "include-cycle");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].chain.size(), 3u);
  EXPECT_NE(found[0].chain[0].find("util/"), std::string::npos);
}

TEST(LintAnalyzer, NoLayeringOptionSkipsStructuralRules) {
  ol::Analyzer a(test_layers());
  a.add_file("src/obs/metrics.hpp", "#include \"fabric/loop.hpp\"\n");
  a.add_file("src/fabric/loop.hpp", "#include \"obs/metrics.hpp\"\n");
  ol::AnalyzerOptions opts;
  opts.layering = false;
  EXPECT_TRUE(run_rule(a, "layering", opts).empty());
  EXPECT_TRUE(run_rule(a, "include-cycle", opts).empty());
}

// --- Determinism taint ----------------------------------------------------

// fabric entry -> util helper -> getenv seed, full chain reported.
TEST(LintAnalyzer, TaintChainAcrossModules) {
  ol::Analyzer a(test_layers());
  a.add_file("src/util/env.cpp",
             "namespace osprey::util {\n"
             "int worker_count() { return getenv(\"N\") ? 2 : 1; }\n"
             "}\n");
  a.add_file("src/fabric/svc.cpp",
             "namespace osprey::fabric {\n"
             "int helper() { return osprey::util::worker_count(); }\n"
             "int run_service() { return helper(); }\n"
             "}\n");
  std::vector<ol::Finding> found = run_rule(a, "determinism-taint");
  // helper and run_service are both tainted fabric entry points.
  ASSERT_EQ(found.size(), 2u);
  const ol::Finding* run = nullptr;
  for (const ol::Finding& f : found) {
    if (f.message.find("run_service") != std::string::npos) run = &f;
  }
  ASSERT_NE(run, nullptr);
  // Chain: run_service -> helper -> worker_count -> getenv sink.
  ASSERT_EQ(run->chain.size(), 4u);
  EXPECT_NE(run->chain[0].find("run_service"), std::string::npos);
  EXPECT_NE(run->chain[1].find("helper"), std::string::npos);
  EXPECT_NE(run->chain[2].find("worker_count"), std::string::npos);
  EXPECT_NE(run->chain[3].find("getenv"), std::string::npos);
  EXPECT_NE(run->message.find("env"), std::string::npos);
}

TEST(LintAnalyzer, TaintStopsAtDeclaredBarrier) {
  ol::Analyzer a(test_layers());
  // src/util/clock. is a taint-barrier in test_layers().
  a.add_file("src/util/clock.cpp",
             "namespace osprey::util {\n"
             "long wall_now() { return std::chrono::steady_clock::now()\n"
             "    .time_since_epoch().count(); }\n"
             "}\n");
  a.add_file("src/fabric/svc.cpp",
             "namespace osprey::fabric {\n"
             "long stamp() { return osprey::util::wall_now(); }\n"
             "}\n");
  EXPECT_TRUE(run_rule(a, "determinism-taint").empty());
}

TEST(LintAnalyzer, TaintSeedsUnorderedIterationAndThreads) {
  ol::Analyzer a(test_layers());
  a.add_file("src/serve/svc.cpp",
             "namespace osprey::serve {\n"
             "void spin() { std::thread t([]{}); t.join(); }\n"
             "int sum(const std::unordered_map<int,int>& m) {\n"
             "  int s = 0;\n"
             "  for (const auto& kv : m) s += kv.second;\n"
             "  return s;\n"
             "}\n"
             "}\n");
  std::vector<ol::Finding> found = run_rule(a, "determinism-taint");
  ASSERT_EQ(found.size(), 2u);
  bool saw_thread = false, saw_unordered = false;
  for (const ol::Finding& f : found) {
    if (f.message.find("thread") != std::string::npos) saw_thread = true;
    if (f.message.find("unordered") != std::string::npos) {
      saw_unordered = true;
    }
  }
  EXPECT_TRUE(saw_thread);
  EXPECT_TRUE(saw_unordered);
}

TEST(LintAnalyzer, TaintOnlyReportsEntryModules) {
  ol::Analyzer a(test_layers());
  // util is not a taint-entry: a seed there alone reports nothing.
  a.add_file("src/util/misc.cpp",
             "namespace osprey::util {\n"
             "int jitter() { return rand(); }\n"
             "}\n");
  EXPECT_TRUE(run_rule(a, "determinism-taint").empty());
}

// --- --diff-base subsetting -----------------------------------------------

TEST(LintAnalyzer, DiffBaseKeepsAnchorsAndChainTouches) {
  ol::Analyzer a(test_layers());
  a.add_file("src/util/env.cpp",
             "namespace osprey::util {\n"
             "int worker_count() { return getenv(\"N\") ? 2 : 1; }\n"
             "}\n");
  a.add_file("src/fabric/svc.cpp",
             "namespace osprey::fabric {\n"
             "int run_service() { return osprey::util::worker_count(); }\n"
             "}\n");
  a.add_file("src/fabric/other.cpp",
             "namespace osprey::fabric {\n"
             "int unrelated() { return rand(); }\n"
             "}\n");

  // Only the util helper changed: the taint finding anchored in
  // svc.cpp survives (its chain passes through env.cpp); the rng
  // finding in other.cpp is filtered out.
  ol::AnalyzerOptions opts;
  opts.changed = {"src/util/env.cpp"};
  std::vector<ol::Finding> found = a.run(opts);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule, "determinism-taint");
  EXPECT_EQ(found[0].file, "src/fabric/svc.cpp");

  // A change set touching nothing relevant reports nothing.
  opts.changed = {"README.md"};
  EXPECT_TRUE(a.run(opts).empty());
}

// --- Call-graph extraction ------------------------------------------------

TEST(LintCallgraph, QualifiedNamesAndCallSites) {
  ol::LexedFile lexed = ol::lex(
      "namespace osprey::fabric {\n"
      "class EventLoop {\n"
      "  bool fire_next();\n"
      "};\n"
      "bool EventLoop::fire_next() { helper(7); return true; }\n"
      "std::size_t run_all() { while (fire_next()) {} return 0; }\n"
      "}\n");
  std::vector<ol::FunctionDef> defs =
      ol::extract_functions("src/fabric/event_loop.cpp", lexed);
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(defs[0].qualified, "osprey::fabric::EventLoop::fire_next");
  EXPECT_EQ(defs[1].qualified, "osprey::fabric::run_all");
  ASSERT_EQ(defs[0].calls.size(), 1u);
  EXPECT_EQ(defs[0].calls[0].name, "helper");
  ASSERT_EQ(defs[1].calls.size(), 1u);
  EXPECT_EQ(defs[1].calls[0].name, "fire_next");
}

TEST(LintLayers, ParserRejectsCyclesAndUndeclaredDeps) {
  std::vector<std::string> errors;
  ol::parse_layers("layer a = b\nlayer b = a\n", errors);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("cyclic"), std::string::npos);

  errors.clear();
  ol::parse_layers("layer a = ghost\n", errors);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("undeclared"), std::string::npos);
}

}  // namespace
