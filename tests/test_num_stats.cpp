#include "num/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "num/special.hpp"
#include "util/error.hpp"

namespace on = osprey::num;

TEST(Stats, MeanVarianceKnown) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(on::mean(xs), 5.0);
  EXPECT_NEAR(on::variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Stats, EmptyMeanThrows) {
  EXPECT_THROW(on::mean({}), osprey::util::InvalidArgument);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(on::variance({3.0}), 0.0);
}

TEST(Stats, WeightedMean) {
  EXPECT_DOUBLE_EQ(on::weighted_mean({1.0, 3.0}, {1.0, 3.0}), 2.5);
  EXPECT_THROW(on::weighted_mean({1.0}, {0.0}), osprey::util::InvalidArgument);
}

TEST(Stats, QuantileType7) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(on::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(on::quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(on::quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(on::quantile(xs, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(on::median({5.0, 1.0, 3.0}), 3.0);
}

TEST(Stats, QuantileSortedMatchesQuantileOnRandomSample) {
  // quantile() sorts internally; quantile_sorted() trusts the caller.
  // On a pre-sorted fixed-seed sample they must agree exactly.
  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> unif(-50.0, 50.0);
  std::vector<double> xs(501);
  for (double& x : xs) x = unif(rng);
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.025, 0.1, 0.25, 0.5, 0.643, 0.9, 0.975, 1.0}) {
    EXPECT_DOUBLE_EQ(on::quantile_sorted(sorted, q), on::quantile(xs, q))
        << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(on::quantile_sorted({7.0}, 0.31), 7.0);
  EXPECT_THROW(on::quantile_sorted({}, 0.5), osprey::util::InvalidArgument);
  EXPECT_THROW(on::quantile_sorted({1.0}, 1.5), osprey::util::InvalidArgument);
}

TEST(Stats, SummarizeMatchesIndividualQuantiles) {
  // summarize() now sorts once and reuses the sorted copy for min, max,
  // and the three quantiles; the outputs must be unchanged.
  std::mt19937_64 rng(99);
  std::normal_distribution<double> norm(3.0, 2.0);
  std::vector<double> xs(777);
  for (double& x : xs) x = norm(rng);
  on::Summary s = on::summarize(xs);
  EXPECT_DOUBLE_EQ(s.min, *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(s.max, *std::max_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(s.q025, on::quantile(xs, 0.025));
  EXPECT_DOUBLE_EQ(s.median, on::quantile(xs, 0.5));
  EXPECT_DOUBLE_EQ(s.q975, on::quantile(xs, 0.975));
  EXPECT_DOUBLE_EQ(s.mean, on::mean(xs));
  EXPECT_DOUBLE_EQ(s.sd, on::stddev(xs));
}

TEST(Stats, RmseMae) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{1.0, 4.0, 1.0};
  EXPECT_NEAR(on::rmse(a, b), std::sqrt((0.0 + 4.0 + 4.0) / 3.0), 1e-12);
  EXPECT_NEAR(on::mae(a, b), 4.0 / 3.0, 1e-12);
}

TEST(Stats, CorrelationPerfectAndConstant) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{2.0, 4.0, 6.0};
  std::vector<double> c{-1.0, -2.0, -3.0};
  std::vector<double> flat{5.0, 5.0, 5.0};
  EXPECT_NEAR(on::correlation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(on::correlation(a, c), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(on::correlation(a, flat), 0.0);
}

TEST(Stats, SummaryFields) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  on::Summary s = on::summarize(xs);
  EXPECT_EQ(s.n, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_LT(s.q025, s.median);
  EXPECT_GT(s.q975, s.median);
}

TEST(Stats, RunningStatMatchesBatch) {
  std::vector<double> xs{1.5, -2.0, 3.25, 0.0, 10.0};
  on::RunningStat rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), on::mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), on::variance(xs), 1e-12);
}

TEST(Special, GammaPKnownValues) {
  // P(1, x) = 1 - exp(-x).
  EXPECT_NEAR(on::gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
  EXPECT_NEAR(on::gamma_p(1.0, 0.0), 0.0, 1e-15);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(on::gamma_p(0.5, 2.0), std::erf(std::sqrt(2.0)), 1e-10);
  // Large-x limit.
  EXPECT_NEAR(on::gamma_p(3.0, 100.0), 1.0, 1e-12);
}

TEST(Special, GammaQuantileInvertsCdf) {
  for (double shape : {0.7, 2.0, 11.0}) {
    for (double q : {0.025, 0.5, 0.975}) {
      double x = on::gamma_quantile(q, shape, 2.0);
      EXPECT_NEAR(on::gamma_p(shape, x / 2.0), q, 1e-8)
          << "shape=" << shape << " q=" << q;
    }
  }
}

TEST(Special, NormalQuantileMatchesCdf) {
  for (double q : {0.001, 0.025, 0.3, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(on::normal_cdf(on::normal_quantile(q)), q, 1e-8);
  }
  EXPECT_NEAR(on::normal_quantile(0.975), 1.959964, 1e-5);
}
