/// Tests for the two extension subsystems: the GP-surrogate calibrator
/// and the workflow-artifact catalog.

#include <gtest/gtest.h>

#include <cmath>

#include "core/artifact_catalog.hpp"
#include "core/metarvm_gsa.hpp"
#include "gsa/calibrate.hpp"
#include "util/error.hpp"

namespace oc = osprey::core;
namespace og = osprey::gsa;
namespace on = osprey::num;

namespace {

og::CalibrationConfig quad_config() {
  og::CalibrationConfig cfg;
  cfg.ranges = {{"a", 0.0, 1.0}, {"b", 0.0, 1.0}};
  cfg.n_init = 10;
  cfg.n_total = 35;
  cfg.n_candidates = 200;
  cfg.gp.mle_restarts = 0;
  cfg.seed = 3;
  return cfg;
}

}  // namespace

TEST(Calibrator, FindsQuadraticMinimum) {
  // Loss minimized at (0.3, 0.7).
  og::LossFn loss = [](const on::Vector& x) {
    return (x[0] - 0.3) * (x[0] - 0.3) + (x[1] - 0.7) * (x[1] - 0.7);
  };
  og::CalibrationResult result = og::calibrate(quad_config(), loss);
  EXPECT_EQ(result.evaluations, 35u);
  EXPECT_NEAR(result.best_x[0], 0.3, 0.08);
  EXPECT_NEAR(result.best_x[1], 0.7, 0.08);
  EXPECT_LT(result.best_loss, 0.01);
}

TEST(Calibrator, BestLossMonotonicallyImproves) {
  og::LossFn loss = [](const on::Vector& x) {
    return std::sin(5.0 * x[0]) + x[1] * x[1];
  };
  og::CalibrationResult result = og::calibrate(quad_config(), loss);
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_LE(result.trajectory[i].best_loss,
              result.trajectory[i - 1].best_loss);
  }
}

TEST(Calibrator, BeatsInitialDesignAlone) {
  // EI refinement should improve meaningfully over the LHS-only minimum.
  og::LossFn loss = [](const on::Vector& x) {
    return std::pow(x[0] - 0.62, 2.0) + std::pow(x[1] - 0.41, 2.0);
  };
  og::CalibrationConfig cfg = quad_config();
  og::CalibrationResult result = og::calibrate(cfg, loss);
  double after_init = result.trajectory[cfg.n_init - 1].best_loss;
  EXPECT_LT(result.best_loss, 0.5 * after_init);
}

TEST(Calibrator, DeterministicPerSeed) {
  og::LossFn loss = [](const on::Vector& x) {
    return x[0] * x[0] + 0.5 * x[1];
  };
  og::CalibrationResult a = og::calibrate(quad_config(), loss);
  og::CalibrationResult b = og::calibrate(quad_config(), loss);
  EXPECT_EQ(a.best_x, b.best_x);
  EXPECT_DOUBLE_EQ(a.best_loss, b.best_loss);
}

TEST(Calibrator, RecoversMetaRvmTransmissionRate) {
  // Generate "observed" hospitalizations at a known ts, then calibrate
  // (ts, psh) to match — the paper's calibration motivation, end to end.
  auto model = std::make_shared<const osprey::epi::MetaRvm>(
      osprey::epi::MetaRvmConfig::single_group(50'000, 30, 60));
  osprey::epi::MetaRvmParams truth = osprey::epi::MetaRvmParams::nominal();
  truth.ts = 0.42;
  truth.psh = 0.27;
  on::RngStream obs_rng = on::RngStream(5).substream(0);
  auto observed_traj = model->run(truth, obs_rng);
  std::vector<double> observed;
  for (std::int64_t v : observed_traj.total_new_hospitalizations()) {
    observed.push_back(static_cast<double>(v));
  }

  og::CalibrationConfig cfg;
  cfg.ranges = {{"ts", 0.1, 0.9}, {"psh", 0.1, 0.4}};
  cfg.n_init = 12;
  cfg.n_total = 45;
  cfg.n_candidates = 200;
  cfg.gp.mle_restarts = 0;
  cfg.seed = 11;
  og::LossFn loss = [&](const on::Vector& x) {
    osprey::epi::MetaRvmParams p = osprey::epi::MetaRvmParams::nominal();
    p.ts = x[0];
    p.psh = x[1];
    on::RngStream rng = on::RngStream(5).substream(0);  // common random numbers
    auto traj = model->run(p, rng);
    std::vector<double> simulated;
    for (std::int64_t v : traj.total_new_hospitalizations()) {
      simulated.push_back(static_cast<double>(v));
    }
    return og::series_mse_log(simulated, observed);
  };
  og::CalibrationResult result = og::calibrate(cfg, loss);
  // The loss surface is stochastic-rough (trajectories diverge under a
  // common random stream once parameters change), so the exact zero at
  // the truth is a needle. What calibration promises — and what we
  // assert — is basin-finding: a fit much better than the nominal
  // starting point, with ts localized by the epidemic growth rate.
  on::Vector nominal_x{osprey::epi::MetaRvmParams::nominal().ts,
                       osprey::epi::MetaRvmParams::nominal().psh};
  EXPECT_LT(result.best_loss, 0.4 * loss(nominal_x));
  EXPECT_NEAR(result.best_x[0], truth.ts, 0.15);
}

TEST(Calibrator, Validation) {
  og::CalibrationConfig cfg;  // empty ranges
  EXPECT_THROW(og::Calibrator{cfg}, osprey::util::InvalidArgument);
  EXPECT_THROW(og::series_mse_log({1.0}, {1.0, 2.0}),
               osprey::util::InvalidArgument);
}

// ---------------------------------------------------------------------

namespace {

oc::ArtifactCatalog demo_catalog() {
  oc::ArtifactCatalog catalog;
  catalog.add({"metarvm", oc::ArtifactType::kModel, oc::Language::kCpp,
               "1.0.0", "stochastic metapopulation epidemic model",
               {"epidemiology", "stochastic"}, "repo://src/epi/metarvm.hpp"});
  catalog.add({"music-gsa", oc::ArtifactType::kMeAlgorithm,
               oc::Language::kR, "0.9.0",
               "active-learning Sobol sensitivity analysis",
               {"gsa", "surrogate"}, "repo://src/gsa/music.hpp"});
  catalog.add({"music-gsa", oc::ArtifactType::kMeAlgorithm,
               oc::Language::kR, "1.0.0",
               "active-learning Sobol sensitivity analysis",
               {"gsa", "surrogate"}, "repo://src/gsa/music.hpp"});
  catalog.add({"rt-estimate", oc::ArtifactType::kHarness,
               oc::Language::kJulia, "1.0.0",
               "Goldstein wastewater R(t) estimation",
               {"epidemiology", "bayesian"}, "repo://src/rt/goldstein.hpp"});
  return catalog;
}

}  // namespace

TEST(ArtifactCatalog, RegisterAndLookup) {
  oc::ArtifactCatalog catalog = demo_catalog();
  EXPECT_EQ(catalog.size(), 4u);
  EXPECT_TRUE(catalog.has("metarvm", "1.0.0"));
  EXPECT_FALSE(catalog.has("metarvm", "2.0.0"));
  EXPECT_EQ(catalog.get("music-gsa", "0.9.0").version, "0.9.0");
  EXPECT_EQ(catalog.latest("music-gsa").version, "1.0.0");
  EXPECT_THROW(catalog.get("nope", "1.0.0"), osprey::util::NotFound);
  EXPECT_THROW(catalog.latest("nope"), osprey::util::NotFound);
}

TEST(ArtifactCatalog, DuplicateRejected) {
  oc::ArtifactCatalog catalog = demo_catalog();
  EXPECT_THROW(
      catalog.add({"metarvm", oc::ArtifactType::kModel, oc::Language::kCpp,
                   "1.0.0", "", {}, ""}),
      osprey::util::InvalidArgument);
}

TEST(ArtifactCatalog, DiscoveryQueries) {
  oc::ArtifactCatalog catalog = demo_catalog();
  EXPECT_EQ(catalog.by_type(oc::ArtifactType::kMeAlgorithm).size(), 2u);
  EXPECT_EQ(catalog.by_type(oc::ArtifactType::kDataset).size(), 0u);
  EXPECT_EQ(catalog.by_tag("epidemiology").size(), 2u);
  EXPECT_EQ(catalog.by_language(oc::Language::kJulia).size(), 1u);
  EXPECT_EQ(catalog.search("SOBOL").size(), 2u);  // case-insensitive
  EXPECT_EQ(catalog.search("wastewater").size(), 1u);
}

TEST(ArtifactCatalog, JsonRoundTrip) {
  oc::ArtifactCatalog catalog = demo_catalog();
  osprey::util::Value json = catalog.to_json();
  // Serializes to parseable JSON text.
  osprey::util::Value reparsed =
      osprey::util::Value::parse_json(json.to_json());
  oc::ArtifactCatalog round = oc::ArtifactCatalog::from_json(reparsed);
  EXPECT_EQ(round.size(), catalog.size());
  EXPECT_EQ(round.get("rt-estimate", "1.0.0").language,
            oc::Language::kJulia);
  EXPECT_EQ(round.latest("music-gsa").version, "1.0.0");
  EXPECT_EQ(round.get("metarvm", "1.0.0").tags,
            (std::vector<std::string>{"epidemiology", "stochastic"}));
}

TEST(ArtifactCatalog, FromJsonValidation) {
  osprey::util::Value bad;
  bad["catalog_format"] = osprey::util::Value(std::int64_t{99});
  bad["artifacts"] = osprey::util::Value(osprey::util::ValueArray{});
  EXPECT_THROW(oc::ArtifactCatalog::from_json(bad),
               osprey::util::InvalidArgument);
}
