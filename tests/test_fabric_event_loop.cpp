#include "fabric/event_loop.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace of = osprey::fabric;
using osprey::util::kDay;
using osprey::util::kHour;
using osprey::util::kSecond;

TEST(EventLoop, StartsAtZero) {
  of::EventLoop loop;
  EXPECT_EQ(loop.now(), 0);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, FiresInTimeOrder) {
  of::EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(3 * kSecond, [&] { order.push_back(3); });
  loop.schedule_at(1 * kSecond, [&] { order.push_back(1); });
  loop.schedule_at(2 * kSecond, [&] { order.push_back(2); });
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 3 * kSecond);
}

TEST(EventLoop, StableOrderAtEqualTimes) {
  of::EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(kSecond, [&order, i] { order.push_back(i); });
  }
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, RunUntilAdvancesClockEvenWithoutEvents) {
  of::EventLoop loop;
  EXPECT_EQ(loop.run_until(5 * kDay), 0u);
  EXPECT_EQ(loop.now(), 5 * kDay);
}

TEST(EventLoop, RunUntilLeavesLaterEventsPending) {
  of::EventLoop loop;
  int fired = 0;
  loop.schedule_at(1 * kHour, [&] { ++fired; });
  loop.schedule_at(3 * kHour, [&] { ++fired; });
  EXPECT_EQ(loop.run_until(2 * kHour), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, EventsMayScheduleEvents) {
  of::EventLoop loop;
  std::vector<of::SimTime> times;
  loop.schedule_at(kSecond, [&] {
    times.push_back(loop.now());
    loop.schedule_after(kSecond, [&] { times.push_back(loop.now()); });
  });
  loop.run_all();
  EXPECT_EQ(times, (std::vector<of::SimTime>{kSecond, 2 * kSecond}));
}

TEST(EventLoop, CancelPreventsFiring) {
  of::EventLoop loop;
  bool fired = false;
  of::EventId id = loop.schedule_at(kSecond, [&] { fired = true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // already cancelled
  loop.run_all();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, CancelledTombstonesDoNotBlockRunUntil) {
  of::EventLoop loop;
  of::EventId id = loop.schedule_at(kSecond, [] {});
  loop.schedule_at(2 * kSecond, [] {});
  loop.cancel(id);
  EXPECT_EQ(loop.run_until(3 * kSecond), 1u);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, SchedulingInPastThrows) {
  of::EventLoop loop;
  loop.schedule_at(kSecond, [] {});
  loop.run_all();
  EXPECT_THROW(loop.schedule_at(0, [] {}), osprey::util::InvalidArgument);
  EXPECT_THROW(loop.schedule_after(-1, [] {}),
               osprey::util::InvalidArgument);
}

TEST(EventLoop, RunawayLoopIsCapped) {
  of::EventLoop loop;
  std::function<void()> rearm = [&] { loop.schedule_after(1, rearm); };
  loop.schedule_after(1, rearm);
  EXPECT_THROW(loop.run_all(1000), osprey::util::Error);
}

TEST(EventLoop, ProcessedCounter) {
  of::EventLoop loop;
  for (int i = 0; i < 7; ++i) loop.schedule_at(i * kSecond, [] {});
  loop.run_all();
  EXPECT_EQ(loop.events_processed(), 7u);
}
