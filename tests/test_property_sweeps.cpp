/// Parameterized property sweeps (TEST_P): invariants that must hold
/// across whole regions of configuration space, not just single points.

#include <gtest/gtest.h>

#include <cmath>

#include "core/metarvm_gsa.hpp"
#include "epi/metarvm.hpp"
#include "fabric/storage.hpp"
#include "gsa/music.hpp"
#include "gsa/pce.hpp"
#include "gsa/sobol.hpp"
#include "num/sampling.hpp"

namespace oc = osprey::core;
namespace oe = osprey::epi;
namespace of = osprey::fabric;
namespace og = osprey::gsa;
namespace on = osprey::num;

// ---------------------------------------------------------------------
// MetaRVM invariants across the Table-1 box (corners + center + seeds).
// ---------------------------------------------------------------------

struct MetaRvmCase {
  double ts, tv, pea, psh, phd;
  std::uint64_t seed;
};

class MetaRvmInvariants : public ::testing::TestWithParam<MetaRvmCase> {};

TEST_P(MetaRvmInvariants, HoldEverywhereInTheBox) {
  const MetaRvmCase c = GetParam();
  on::Vector x{c.ts, c.tv, c.pea, c.psh, c.phd};
  oe::MetaRvmParams params = oc::params_from_point(x);
  oe::MetaRvmConfig cfg = oe::MetaRvmConfig::stratified_demo(60'000, 90);
  oe::MetaRvm model(cfg);
  on::RngStream rng(c.seed);
  oe::MetaRvmTrajectory traj = model.run(params, rng);

  std::int64_t total_pop = 0;
  for (const auto& g : cfg.groups) total_pop += g.population;

  std::int64_t infections = traj.total_infections();
  std::int64_t hospitalizations = traj.total_hospitalizations();
  std::int64_t deaths = traj.total_deaths();

  // Counting identities.
  EXPECT_GE(infections, 0);
  EXPECT_GE(hospitalizations, 0);
  EXPECT_LE(deaths, hospitalizations);  // all deaths pass through H
  // Cumulative D matches the final compartment.
  std::int64_t final_d = 0;
  for (const auto& g : traj.groups) final_d += g.daily.back().d;
  EXPECT_EQ(deaths, final_d);
  // Compartments non-negative every day, every group (population
  // conservation is asserted inside the model).
  for (const auto& g : traj.groups) {
    for (const auto& day : g.daily) {
      EXPECT_GE(day.s, 0);
      EXPECT_GE(day.v, 0);
      EXPECT_GE(day.e, 0);
      EXPECT_GE(day.ia, 0);
      EXPECT_GE(day.ip, 0);
      EXPECT_GE(day.is, 0);
      EXPECT_GE(day.h, 0);
      EXPECT_GE(day.r, 0);
      EXPECT_GE(day.d, 0);
    }
  }
  // Determinism.
  on::RngStream rng2(c.seed);
  EXPECT_EQ(model.run(params, rng2).total_hospitalizations(),
            hospitalizations);
}

INSTANTIATE_TEST_SUITE_P(
    Table1Box, MetaRvmInvariants,
    ::testing::Values(
        MetaRvmCase{0.1, 0.01, 0.4, 0.1, 0.0, 1},   // all-low corner
        MetaRvmCase{0.9, 0.5, 0.9, 0.4, 0.3, 2},    // all-high corner
        MetaRvmCase{0.5, 0.25, 0.65, 0.25, 0.15, 3},  // center
        MetaRvmCase{0.9, 0.01, 0.4, 0.4, 0.3, 4},
        MetaRvmCase{0.1, 0.5, 0.9, 0.1, 0.0, 5},
        MetaRvmCase{0.7, 0.1, 0.5, 0.3, 0.05, 6},
        MetaRvmCase{0.5, 0.25, 0.65, 0.25, 0.15, 99}));  // center, new seed

// ---------------------------------------------------------------------
// GSA estimator agreement on additive polynomial models with known
// exact indices: Saltelli, PCE and MUSIC must all find them.
// ---------------------------------------------------------------------

struct AdditiveCase {
  double a, b, c;  // y = a x0 + b x1 + c x2 on [0,1]^3
};

class GsaEstimatorAgreement : public ::testing::TestWithParam<AdditiveCase> {
 protected:
  static std::vector<on::ParamRange> ranges() {
    return {{"x0", 0.0, 1.0}, {"x1", 0.0, 1.0}, {"x2", 0.0, 1.0}};
  }
  static std::vector<double> exact_s1(const AdditiveCase& c) {
    double va = c.a * c.a, vb = c.b * c.b, vc = c.c * c.c;
    double total = va + vb + vc;
    if (total == 0.0) return {0.0, 0.0, 0.0};
    return {va / total, vb / total, vc / total};
  }
};

TEST_P(GsaEstimatorAgreement, AllThreeEstimatorsAgreeWithTheory) {
  const AdditiveCase c = GetParam();
  og::ModelFn fn = [c](const on::Vector& x) {
    return c.a * x[0] + c.b * x[1] + c.c * x[2];
  };
  std::vector<double> exact = exact_s1(c);

  og::SobolIndices saltelli = og::saltelli_indices(fn, ranges(), 2048);
  og::SobolIndices pce = og::pce_gsa(fn, ranges(), 120, 5);

  og::MusicConfig mcfg;
  mcfg.ranges = ranges();
  mcfg.n_init = 12;
  mcfg.n_total = 30;
  mcfg.n_candidates = 60;
  mcfg.surrogate_mc_n = 512;
  mcfg.gp.mle_restarts = 0;
  mcfg.seed = 3;
  og::MusicResult music = og::run_music(mcfg, fn);

  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(saltelli.first_order[j], exact[j], 0.03) << "saltelli " << j;
    EXPECT_NEAR(pce.first_order[j], exact[j], 0.03) << "pce " << j;
    EXPECT_NEAR(music.final_s1[j], exact[j], 0.08) << "music " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CoefficientFamilies, GsaEstimatorAgreement,
    ::testing::Values(AdditiveCase{1.0, 1.0, 1.0},
                      AdditiveCase{3.0, 1.0, 0.0},
                      AdditiveCase{0.0, 2.0, 1.0},
                      AdditiveCase{5.0, 0.5, 0.1},
                      AdditiveCase{1.0, 0.0, 0.0}));

// ---------------------------------------------------------------------
// Storage ACL matrix: every (permission, operation) combination.
// ---------------------------------------------------------------------

struct AclCase {
  of::Permission granted;
  bool can_read;
  bool can_write;
};

class StorageAclMatrix : public ::testing::TestWithParam<AclCase> {};

TEST_P(StorageAclMatrix, EnforcesExactly) {
  const AclCase c = GetParam();
  of::EventLoop loop;
  of::AuthService auth;
  of::StorageEndpoint ep("ep", loop, auth);
  std::string owner = auth.issue_full_token("owner");
  std::string other = auth.issue_full_token("other");
  ep.create_collection("col", owner);
  ep.put("col", "obj", "payload", owner);
  if (c.granted != of::Permission::kNone) {
    ep.grant("col", "other", c.granted, owner);
  }
  if (c.can_read) {
    EXPECT_NO_THROW(ep.get("col", "obj", other));
  } else {
    EXPECT_THROW(ep.get("col", "obj", other), osprey::util::AuthError);
  }
  if (c.can_write) {
    EXPECT_NO_THROW(ep.put("col", "new", "x", other));
  } else {
    EXPECT_THROW(ep.put("col", "new", "x", other), osprey::util::AuthError);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Permissions, StorageAclMatrix,
    ::testing::Values(AclCase{of::Permission::kNone, false, false},
                      AclCase{of::Permission::kRead, true, false},
                      AclCase{of::Permission::kReadWrite, true, true}));

// ---------------------------------------------------------------------
// Sampling property: LHS projections stay stratified for any (n, d).
// ---------------------------------------------------------------------

struct LhsCase {
  std::size_t n, d;
  std::uint64_t seed;
};

class LhsStratification : public ::testing::TestWithParam<LhsCase> {};

TEST_P(LhsStratification, EveryDimensionOnePointPerStratum) {
  const LhsCase c = GetParam();
  on::RngStream rng(c.seed);
  on::Matrix design = on::latin_hypercube(c.n, c.d, rng);
  for (std::size_t j = 0; j < c.d; ++j) {
    std::vector<bool> strata(c.n, false);
    for (std::size_t i = 0; i < c.n; ++i) {
      auto s = static_cast<std::size_t>(design(i, j) *
                                        static_cast<double>(c.n));
      ASSERT_LT(s, c.n);
      EXPECT_FALSE(strata[s]) << "n=" << c.n << " d=" << j;
      strata[s] = true;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LhsStratification,
    ::testing::Values(LhsCase{2, 1, 1}, LhsCase{7, 3, 2}, LhsCase{25, 5, 3},
                      LhsCase{64, 2, 4}, LhsCase{101, 8, 5},
                      LhsCase{200, 10, 6}));

// ---------------------------------------------------------------------
// Sobol indices of any model are bounded and consistent: S1 <= ST (+mc
// noise) and sum of S1 <= 1 (+noise) for additive-or-positive models.
// ---------------------------------------------------------------------

struct BoundCase {
  int which;  // selects a model shape
};

class SobolBounds : public ::testing::TestWithParam<BoundCase> {};

TEST_P(SobolBounds, FirstOrderBelowTotalOrder) {
  const int which = GetParam().which;
  og::ModelFn fn;
  switch (which) {
    case 0:
      fn = [](const on::Vector& x) { return x[0] * x[1] + x[2]; };
      break;
    case 1:
      fn = [](const on::Vector& x) {
        return std::sin(3.0 * x[0]) + std::exp(x[1]) * x[2];
      };
      break;
    default:
      fn = [](const on::Vector& x) {
        return std::pow(x[0] - 0.5, 2.0) + x[1] * x[2] + 0.1 * x[0] * x[2];
      };
  }
  std::vector<on::ParamRange> ranges{{"a", 0, 1}, {"b", 0, 1}, {"c", 0, 1}};
  og::SobolIndices idx = og::saltelli_indices(fn, ranges, 4096);
  double s1_sum = 0.0;
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_LE(idx.first_order[j], idx.total_order[j] + 0.05) << j;
    EXPECT_GE(idx.first_order[j], -0.05) << j;
    EXPECT_LE(idx.total_order[j], 1.05) << j;
    s1_sum += idx.first_order[j];
  }
  EXPECT_LE(s1_sum, 1.05);
}

INSTANTIATE_TEST_SUITE_P(ModelShapes, SobolBounds,
                         ::testing::Values(BoundCase{0}, BoundCase{1},
                                           BoundCase{2}));
