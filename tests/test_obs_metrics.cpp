/// obs::MetricsRegistry semantics: counter/gauge basics, histogram
/// bucketing and quantile edge cases, deterministic snapshot ordering,
/// kind collisions, and the Prometheus text exposition format.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace obs = osprey::obs;
namespace ou = osprey::util;

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("requests_total", "requests");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same instrument.
  EXPECT_EQ(&reg.counter("requests_total"), &c);
}

TEST(Gauge, SetAndAdd) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("queue_depth", "depth");
  EXPECT_EQ(g.value(), 0.0);
  g.set(5.0);
  g.add(-2.0);
  EXPECT_EQ(g.value(), 3.0);
}

TEST(Histogram, EmptyHistogram) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat", {1.0, 10.0}, "latency");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);  // 2 bounds + overflow
  for (std::uint64_t b : buckets) EXPECT_EQ(b, 0u);
}

TEST(Histogram, SingleObservation) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat", {1.0, 10.0}, "latency");
  h.observe(3.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 3.0);
  EXPECT_EQ(h.min(), 3.0);
  EXPECT_EQ(h.max(), 3.0);
  // All quantiles of a single-point distribution are that point.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
}

TEST(Histogram, BoundaryValuesAreLeInclusive) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat", {1.0, 10.0}, "latency");
  h.observe(1.0);   // lands in the le=1 bucket (Prometheus semantics)
  h.observe(10.0);  // lands in the le=10 bucket
  h.observe(11.0);  // overflow
  std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
}

TEST(Histogram, QuantilesInterpolateAndClamp) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat", {10.0, 20.0, 30.0}, "latency");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i % 30) + 1.0);
  double q0 = h.quantile(0.0);
  double q50 = h.quantile(0.5);
  double q100 = h.quantile(1.0);
  EXPECT_LE(q0, q50);
  EXPECT_LE(q50, q100);
  EXPECT_GE(q0, h.min());
  EXPECT_LE(q100, h.max());
}

TEST(Histogram, RejectsUnsortedBounds) {
  obs::MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("bad", {10.0, 1.0}, "x"), ou::InvalidArgument);
  EXPECT_THROW(reg.histogram("empty", {}, "x"), ou::InvalidArgument);
}

TEST(Registry, KindCollisionThrows) {
  obs::MetricsRegistry reg;
  reg.counter("x", "a counter");
  EXPECT_THROW(reg.gauge("x"), ou::InvalidArgument);
  EXPECT_THROW(reg.histogram("x", {1.0}), ou::InvalidArgument);
}

TEST(Registry, SnapshotOrderingIsDeterministic) {
  obs::MetricsRegistry reg;
  // Register in non-sorted order; names come back sorted.
  reg.counter("zeta_total");
  reg.counter("alpha_total");
  reg.gauge("mid_gauge");
  std::vector<std::string> names = reg.counter_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha_total");
  EXPECT_EQ(names[1], "zeta_total");

  ou::Value snap = reg.snapshot();
  std::string json = snap.to_json();
  // Key order in Value objects is lexicographic, so two snapshots of
  // identical state serialize identically.
  EXPECT_EQ(json, reg.snapshot().to_json());
  EXPECT_LT(json.find("alpha_total"), json.find("zeta_total"));
}

TEST(Prometheus, TextExpositionFormat) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("aero_polls_total", "upstream polls");
  c.inc(7);
  reg.gauge("fabric_queue_depth", "queued jobs").set(3.0);
  obs::Histogram& h =
      reg.histogram("task_ms", {10.0, 100.0}, "task latency (ms)");
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);

  std::string text = obs::prometheus_text(reg);
  EXPECT_NE(text.find("# HELP aero_polls_total upstream polls"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE aero_polls_total counter"), std::string::npos);
  EXPECT_NE(text.find("aero_polls_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fabric_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE task_ms histogram"), std::string::npos);
  // Cumulative buckets: le="10" has 1, le="100" has 2, +Inf has all 3.
  EXPECT_NE(text.find("task_ms_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("task_ms_bucket{le=\"100\"} 2"), std::string::npos);
  EXPECT_NE(text.find("task_ms_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("task_ms_count 3"), std::string::npos);
  // Deterministic: a second export is byte-identical.
  EXPECT_EQ(text, obs::prometheus_text(reg));
}
