#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace oc = osprey::crypto;

// NIST / well-known SHA-256 test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(oc::Sha256::hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(oc::Sha256::hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      oc::Sha256::hash_hex(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  oc::Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.hex_digest(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string payload = "day,conc\n0,10.5\n1,20.25\n";
  oc::Sha256 h;
  for (char c : payload) h.update(&c, 1);
  EXPECT_EQ(h.hex_digest(), oc::Sha256::hash_hex(payload));
}

TEST(Sha256, BoundaryLengths) {
  // Lengths around the 55/56/64-byte padding boundaries must all work
  // and be distinct.
  std::set<std::string> digests;
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    digests.insert(oc::Sha256::hash_hex(std::string(len, 'x')));
  }
  EXPECT_EQ(digests.size(), 9u);
}

TEST(Sha256, ResetAllowsReuse) {
  oc::Sha256 h;
  h.update("abc");
  std::string first = h.hex_digest();
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.hex_digest(), first);
}

TEST(Sha256, UpdateAfterDigestThrows) {
  oc::Sha256 h;
  h.update("abc");
  h.digest();
  EXPECT_THROW(h.update("more"), osprey::util::Error);
}

TEST(Sha256, SensitiveToSingleBitChange) {
  std::string a = "versioned-data";
  std::string b = a;
  b[0] ^= 1;
  EXPECT_NE(oc::Sha256::hash_hex(a), oc::Sha256::hash_hex(b));
}
