/// QoI-variant extraction: structure checks across the four outcomes.

#include <gtest/gtest.h>

#include "core/metarvm_gsa.hpp"
#include "num/rng.hpp"

namespace oc = osprey::core;
namespace oe = osprey::epi;
namespace on = osprey::num;

namespace {

oe::MetaRvmTrajectory run_nominal(std::uint64_t seed) {
  oe::MetaRvm model(oe::MetaRvmConfig::single_group(80'000, 40, 90));
  on::RngStream rng(seed);
  return model.run(oe::MetaRvmParams::nominal(), rng);
}

}  // namespace

TEST(QoiVariants, NamesDistinct) {
  std::set<std::string> names;
  for (oc::Qoi q : {oc::Qoi::kTotalHospitalizations, oc::Qoi::kTotalDeaths,
                    oc::Qoi::kPeakHospitalOccupancy,
                    oc::Qoi::kTotalInfections}) {
    names.insert(oc::qoi_name(q));
  }
  EXPECT_EQ(names.size(), 4u);
}

TEST(QoiVariants, ExtractionMatchesTrajectoryAccessors) {
  oe::MetaRvmTrajectory traj = run_nominal(3);
  EXPECT_DOUBLE_EQ(
      oc::extract_qoi(traj, oc::Qoi::kTotalHospitalizations),
      static_cast<double>(traj.total_hospitalizations()));
  EXPECT_DOUBLE_EQ(oc::extract_qoi(traj, oc::Qoi::kTotalDeaths),
                   static_cast<double>(traj.total_deaths()));
  EXPECT_DOUBLE_EQ(oc::extract_qoi(traj, oc::Qoi::kTotalInfections),
                   static_cast<double>(traj.total_infections()));
}

TEST(QoiVariants, OrderingConstraints) {
  oe::MetaRvmTrajectory traj = run_nominal(7);
  double hosp = oc::extract_qoi(traj, oc::Qoi::kTotalHospitalizations);
  double deaths = oc::extract_qoi(traj, oc::Qoi::kTotalDeaths);
  double peak = oc::extract_qoi(traj, oc::Qoi::kPeakHospitalOccupancy);
  double infections = oc::extract_qoi(traj, oc::Qoi::kTotalInfections);
  EXPECT_LE(deaths, hosp);       // every death passed through H
  EXPECT_LE(hosp, infections);   // every admission was an infection
  EXPECT_GT(peak, 0.0);
  EXPECT_LE(peak, hosp);         // census peak below cumulative admits
}

TEST(QoiVariants, PeakOccupancyTracksCensus) {
  oe::MetaRvmTrajectory traj = run_nominal(11);
  double peak = oc::extract_qoi(traj, oc::Qoi::kPeakHospitalOccupancy);
  std::int64_t manual = 0;
  for (std::size_t t = 0; t < traj.groups[0].daily.size(); ++t) {
    manual = std::max(manual, traj.groups[0].daily[t].h);
  }
  EXPECT_DOUBLE_EQ(peak, static_cast<double>(manual));
}

TEST(QoiVariants, PhdOnlyMovesDeaths) {
  // Changing phd with everything else fixed leaves infections and
  // hospitalizations identical draw-for-draw (same stream, same
  // upstream transitions), but scales deaths.
  oe::MetaRvm model(oe::MetaRvmConfig::single_group(80'000, 40, 90));
  on::Vector lo{0.5, 0.25, 0.65, 0.25, 0.01};
  on::Vector hi{0.5, 0.25, 0.65, 0.25, 0.29};
  double inf_lo = oc::evaluate_metarvm_qoi(model, lo, 5, 0,
                                           oc::Qoi::kTotalInfections);
  double inf_hi = oc::evaluate_metarvm_qoi(model, hi, 5, 0,
                                           oc::Qoi::kTotalInfections);
  double deaths_lo =
      oc::evaluate_metarvm_qoi(model, lo, 5, 0, oc::Qoi::kTotalDeaths);
  double deaths_hi =
      oc::evaluate_metarvm_qoi(model, hi, 5, 0, oc::Qoi::kTotalDeaths);
  // Identical upstream dynamics is not guaranteed draw-for-draw (the
  // h->d split consumes randomness), but the epidemic size must be
  // essentially unchanged while deaths scale by ~29x in expectation.
  EXPECT_NEAR(inf_lo, inf_hi, 0.05 * inf_lo);
  EXPECT_GT(deaths_hi, 5.0 * std::max(deaths_lo, 1.0));
}
