/// Flow lifecycle management (pause/resume/cancel of ingestion polling)
/// and metadata-DB durability (JSON snapshot round-trip) — the
/// operational pieces of an "always-on" platform.

#include <gtest/gtest.h>

#include "aero/server.hpp"
#include "util/error.hpp"

namespace oa = osprey::aero;
namespace of = osprey::fabric;
namespace ou = osprey::util;
using ou::kDay;
using ou::kSecond;
using ou::Value;
using ou::ValueObject;

namespace {

Value id_transform(const Value& args) {
  ValueObject out;
  out["output"] = args.at("input");
  return Value(std::move(out));
}

}  // namespace

class AeroLifecycleTest : public ::testing::Test {
 protected:
  of::EventLoop loop;
  of::AuthService auth;
  of::TimerService timers{loop, auth};
  of::TransferService transfers{loop, auth, kSecond, 100.0e6};
  of::FlowsService flows{loop, auth};
  oa::AeroServer server{loop, auth, timers, transfers, flows};
  of::StorageEndpoint eagle{"eagle", loop, auth};
  of::StorageEndpoint scratch{"scratch", loop, auth};
  of::ComputeEndpoint login{"login", loop, auth, 2};
  std::string transform_fn;

  void SetUp() override {
    eagle.create_collection("data", server.token());
    scratch.create_collection("staging", server.token());
    transform_fn =
        login.register_function("id", id_transform, 10 * kSecond);
  }

  oa::IngestionHandles register_flow(
      const std::string& name,
      std::vector<std::pair<of::SimTime, std::string>> timeline) {
    oa::IngestionFlowSpec spec;
    spec.name = name;
    spec.source = std::make_shared<oa::ScriptedSource>("https://" + name,
                                                       std::move(timeline));
    spec.poll_period = kDay;
    spec.compute = &login;
    spec.function_id = transform_fn;
    spec.staging = &scratch;
    spec.staging_collection = "staging";
    spec.storage = &eagle;
    spec.collection = "data";
    spec.base_path = name;
    return server.register_ingestion(std::move(spec));
  }
};

TEST_F(AeroLifecycleTest, PauseStopsPollingResumeRestarts) {
  // Weekly-changing upstream.
  std::vector<std::pair<of::SimTime, std::string>> timeline;
  for (int week = 0; week < 6; ++week) {
    timeline.emplace_back(week * 7 * kDay, "week" + std::to_string(week));
  }
  auto handles = register_flow("flow", std::move(timeline));

  loop.run_until(8 * kDay);  // weeks 0 and 1 ingested
  EXPECT_EQ(server.db().latest_version_number(handles.output_uuid), 2);

  ASSERT_TRUE(server.pause_ingestion("flow"));
  EXPECT_TRUE(server.ingestion_paused("flow"));
  EXPECT_FALSE(server.pause_ingestion("flow"));  // already paused
  std::uint64_t polls_at_pause = server.polls();
  loop.run_until(20 * kDay);  // weeks 2 at day 14 missed while paused
  EXPECT_EQ(server.polls(), polls_at_pause);
  EXPECT_EQ(server.db().latest_version_number(handles.output_uuid), 2);

  ASSERT_TRUE(server.resume_ingestion("flow"));
  EXPECT_FALSE(server.ingestion_paused("flow"));
  loop.run_until(23 * kDay);  // next poll catches up with week 3 data
  EXPECT_EQ(server.db().latest_version_number(handles.output_uuid), 3);
}

TEST_F(AeroLifecycleTest, CancelIsPermanent) {
  auto handles = register_flow(
      "flow", {{0, "v1"}, {7 * kDay, "v2"}});
  loop.run_until(kDay);
  EXPECT_EQ(server.db().latest_version_number(handles.output_uuid), 1);
  ASSERT_TRUE(server.cancel_ingestion("flow"));
  EXPECT_FALSE(server.cancel_ingestion("flow"));
  EXPECT_FALSE(server.resume_ingestion("flow"));
  EXPECT_FALSE(server.pause_ingestion("flow"));
  loop.run_until(20 * kDay);
  EXPECT_EQ(server.db().latest_version_number(handles.output_uuid), 1);
  // Data and provenance survive cancellation.
  EXPECT_TRUE(server.db().has_object(handles.output_uuid));
  EXPECT_FALSE(server.db().runs().empty());
}

TEST_F(AeroLifecycleTest, UnknownFlowNameReturnsFalse) {
  EXPECT_FALSE(server.pause_ingestion("nope"));
  EXPECT_FALSE(server.resume_ingestion("nope"));
  EXPECT_FALSE(server.cancel_ingestion("nope"));
  EXPECT_FALSE(server.ingestion_paused("nope"));
}

TEST_F(AeroLifecycleTest, MetadataSnapshotRoundTrip) {
  auto handles = register_flow("flow", {{0, "payload-v1"}});
  loop.run_until(kDay);

  ou::Value snapshot = server.db().to_json();
  // Serialize through text (what would hit disk) and restore.
  std::string text = snapshot.to_json();
  oa::MetadataDb restored =
      oa::MetadataDb::from_json(ou::Value::parse_json(text));

  EXPECT_EQ(restored.object_uuids(), server.db().object_uuids());
  EXPECT_EQ(restored.runs().size(), server.db().runs().size());
  auto original = server.db().latest_version(handles.output_uuid);
  auto roundtrip = restored.latest_version(handles.output_uuid);
  ASSERT_TRUE(roundtrip.has_value());
  EXPECT_EQ(roundtrip->checksum, original->checksum);
  EXPECT_EQ(roundtrip->timestamp, original->timestamp);
  EXPECT_EQ(roundtrip->path, original->path);
  // Lineage works on the restored copy.
  auto lineage = restored.upstream_lineage(handles.output_uuid);
  EXPECT_GE(lineage.object_uuids.size(), 1u);
  // Run provenance content survived.
  const auto& run = restored.runs().front();
  EXPECT_EQ(run.flow_name, "flow");
  EXPECT_EQ(run.status, oa::RunStatus::kSucceeded);
}

TEST_F(AeroLifecycleTest, SnapshotRejectsBadFormat) {
  ou::Value bad;
  bad["snapshot_format"] = ou::Value(std::int64_t{99});
  EXPECT_THROW(oa::MetadataDb::from_json(bad), ou::InvalidArgument);
}
