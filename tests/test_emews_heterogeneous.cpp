/// Heterogeneous resources and multi-facility execution — OSPREY goal 1
/// context ("allocating heterogeneous resources (CPU, GPU, and
/// accelerators) based on task needs" and the prior paper's
/// "multi-facility HPC workflows"). In EMEWS terms: task types route
/// work to matching worker pools, and pools on different (simulated)
/// facilities drain a shared task database.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "emews/pool_launcher.hpp"
#include "emews/task_api.hpp"
#include "emews/worker_pool.hpp"
#include "fabric/scheduler.hpp"

namespace oe = osprey::emews;
namespace of = osprey::fabric;
namespace ou = osprey::util;
using ou::Value;
using ou::ValueObject;

TEST(Heterogeneous, TaskTypesRouteToMatchingPools) {
  oe::TaskDb db;
  std::atomic<int> cpu_done{0}, gpu_done{0};
  oe::WorkerPool cpu_pool(db, "model:cpu",
                          [&cpu_done](const Value& v) {
                            ++cpu_done;
                            return v;
                          },
                          2, "cpu-pool");
  oe::WorkerPool gpu_pool(db, "model:gpu",
                          [&gpu_done](const Value& v) {
                            ++gpu_done;
                            return v;
                          },
                          1, "gpu-pool");

  oe::TaskQueue cpu_queue(db, "model:cpu");
  oe::TaskQueue gpu_queue(db, "model:gpu");
  std::vector<oe::TaskFuture> futures;
  for (int i = 0; i < 12; ++i) {
    // Route by task "size": big jobs to the accelerator.
    bool big = i % 3 == 0;
    ValueObject payload;
    payload["i"] = Value(i);
    futures.push_back((big ? gpu_queue : cpu_queue)
                          .submit(Value(std::move(payload))));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(gpu_done.load(), 4);
  EXPECT_EQ(cpu_done.load(), 8);
  cpu_pool.shutdown();
  gpu_pool.shutdown();
}

TEST(Heterogeneous, TwoFacilitiesDrainOneQueue) {
  // Two simulated facilities (separate PBS schedulers) each launch a
  // pool against the SAME task database — the multi-facility pattern of
  // the original OSPREY prototype.
  of::EventLoop loop;
  oe::TaskDb db;
  of::BatchScheduler bebop(loop, 2, "bebop-pbs");
  of::BatchScheduler improv(loop, 2, "improv-pbs");

  std::atomic<int> evaluated{0};
  // Each evaluation takes ~2 ms so that (even on one core) both pools'
  // workers get scheduled and participate.
  oe::ModelFn model = [&evaluated](const Value& v) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ++evaluated;
    return v;
  };
  oe::PoolLaunchSpec spec_a;
  spec_a.name = "bebop-pool";
  spec_a.n_workers = 2;
  oe::PoolLaunchSpec spec_b;
  spec_b.name = "improv-pool";
  spec_b.n_workers = 2;
  oe::LaunchedPool pool_a(bebop, db, "shared", model, spec_a);
  oe::LaunchedPool pool_b(improv, db, "shared", model, spec_b);
  loop.run_until(ou::kMinute);  // both facility jobs start
  ASSERT_TRUE(pool_a.started());
  ASSERT_TRUE(pool_b.started());

  oe::TaskQueue queue(db, "shared");
  std::vector<oe::TaskFuture> futures;
  for (int i = 0; i < 40; ++i) {
    futures.push_back(queue.submit(Value(ValueObject{})));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(evaluated.load(), 40);

  pool_a.stop();
  pool_b.stop();
  // Both facilities did real work (the queue is shared, so exact split
  // varies; each pool must have evaluated at least one task).
  EXPECT_GE(pool_a.pool().tasks_evaluated(), 1u);
  EXPECT_GE(pool_b.pool().tasks_evaluated(), 1u);
  EXPECT_EQ(pool_a.pool().tasks_evaluated() +
                pool_b.pool().tasks_evaluated(),
            40u);
}

TEST(Heterogeneous, PriorityExpressesResourceUrgency) {
  // Urgent analyses (the paper's rapid-response framing) preempt queued
  // routine work via task priority.
  oe::TaskDb db;
  std::vector<int> order;
  std::mutex order_mutex;
  // Submit before the pool starts so the queue ordering is decisive.
  oe::TaskQueue queue(db, "work");
  std::vector<oe::TaskFuture> futures;
  for (int i = 0; i < 5; ++i) {
    ValueObject payload;
    payload["id"] = Value(i);
    futures.push_back(queue.submit(Value(std::move(payload)),
                                   /*priority=*/0));
  }
  ValueObject urgent;
  urgent["id"] = Value(99);
  futures.push_back(queue.submit(Value(std::move(urgent)), /*priority=*/10));

  oe::WorkerPool pool(db, "work",
                      [&](const Value& v) {
                        std::lock_guard<std::mutex> lock(order_mutex);
                        order.push_back(
                            static_cast<int>(v.at("id").as_int()));
                        return Value(ValueObject{});
                      },
                      1);
  for (auto& f : futures) f.wait();
  pool.shutdown();
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order.front(), 99);  // urgent work ran first
}
