#include "core/platform.hpp"

#include <gtest/gtest.h>

#include "core/harness.hpp"
#include "core/metarvm_gsa.hpp"
#include "core/wastewater_source.hpp"
#include "util/error.hpp"

namespace oc = osprey::core;
namespace ou = osprey::util;
using ou::Value;
using ou::ValueObject;

TEST(Platform, EndpointConstructionAndLookup) {
  oc::OspreyPlatform platform;
  platform.add_storage_endpoint("eagle");
  platform.add_scheduler("pbs", 4);
  platform.add_login_endpoint("login", 2);
  platform.add_batch_endpoint("batch", platform.scheduler("pbs"));

  EXPECT_EQ(platform.storage_endpoint("eagle").name(), "eagle");
  EXPECT_EQ(platform.compute_endpoint("login").kind(),
            osprey::fabric::EndpointKind::kLoginNode);
  EXPECT_EQ(platform.compute_endpoint("batch").kind(),
            osprey::fabric::EndpointKind::kBatch);
  EXPECT_THROW(platform.storage_endpoint("nope"), ou::NotFound);
  EXPECT_THROW(platform.compute_endpoint("nope"), ou::NotFound);
  EXPECT_THROW(platform.scheduler("nope"), ou::NotFound);
  EXPECT_THROW(platform.add_storage_endpoint("eagle"), ou::InvalidArgument);
}

TEST(Platform, RunDaysAdvancesClock) {
  oc::OspreyPlatform platform;
  platform.run_days(3);
  EXPECT_EQ(platform.loop().now(), 3 * ou::kDay);
  EXPECT_THROW(platform.run_days(-1), ou::InvalidArgument);
}

TEST(Platform, TokensWork) {
  oc::OspreyPlatform platform;
  std::string token = platform.issue_token("user");
  EXPECT_EQ(platform.auth().identity_of(token), "user");
}

TEST(Harness, RegistryInvokeAndProvenance) {
  oc::HarnessRegistry registry;
  registry.add("estimate", oc::Language::kJulia, "R(t) estimation",
               [](const Value& args) {
                 ValueObject out;
                 out["doubled"] = Value(args.at("x").as_double() * 2);
                 return Value(std::move(out));
               });
  EXPECT_TRUE(registry.has("estimate"));
  ValueObject args;
  args["x"] = Value(5.0);
  Value result = registry.invoke("estimate", Value(args));
  EXPECT_DOUBLE_EQ(result.at("doubled").as_double(), 10.0);
  EXPECT_EQ(registry.info("estimate").invocations, 1u);
  EXPECT_EQ(registry.invocations_by(oc::Language::kJulia), 1u);
  EXPECT_EQ(registry.invocations_by(oc::Language::kR), 0u);
}

TEST(Harness, ComposedHarnessesCountBoth) {
  // Python harness calling a Julia harness: the paper's chain.
  oc::HarnessRegistry registry;
  registry.add("inner", oc::Language::kJulia, "",
               [](const Value&) { return Value(1); });
  registry.add("outer", oc::Language::kPython, "",
               [&registry](const Value& args) {
                 return registry.invoke("inner", args);
               });
  registry.invoke("outer", Value());
  EXPECT_EQ(registry.invocations_by(oc::Language::kPython), 1u);
  EXPECT_EQ(registry.invocations_by(oc::Language::kJulia), 1u);
}

TEST(Harness, ErrorsAndDuplicates) {
  oc::HarnessRegistry registry;
  registry.add("h", oc::Language::kR, "", [](const Value&) { return Value(); });
  EXPECT_THROW(registry.add("h", oc::Language::kR, "",
                            [](const Value&) { return Value(); }),
               ou::InvalidArgument);
  EXPECT_THROW(registry.invoke("missing", Value()), ou::NotFound);
  EXPECT_THROW(registry.info("missing"), ou::NotFound);
  EXPECT_EQ(registry.list().size(), 1u);
}

TEST(Harness, AsComputeFnRoutesThroughRegistry) {
  oc::HarnessRegistry registry;
  registry.add("fn", oc::Language::kCpp, "",
               [](const Value&) { return Value(7); });
  auto fn = registry.as_compute_fn("fn");
  EXPECT_EQ(fn(Value()).as_int(), 7);
  EXPECT_EQ(registry.info("fn").invocations, 1u);
  EXPECT_THROW(registry.as_compute_fn("nope"), ou::InvalidArgument);
}

TEST(Table1, RangesMatchPaper) {
  auto ranges = oc::table1_ranges();
  ASSERT_EQ(ranges.size(), 5u);
  EXPECT_EQ(ranges[0].name, "ts");
  EXPECT_DOUBLE_EQ(ranges[0].lo, 0.1);
  EXPECT_DOUBLE_EQ(ranges[0].hi, 0.9);
  EXPECT_EQ(ranges[1].name, "tv");
  EXPECT_DOUBLE_EQ(ranges[1].lo, 0.01);
  EXPECT_DOUBLE_EQ(ranges[1].hi, 0.5);
  EXPECT_EQ(ranges[2].name, "pea");
  EXPECT_DOUBLE_EQ(ranges[2].lo, 0.4);
  EXPECT_DOUBLE_EQ(ranges[2].hi, 0.9);
  EXPECT_EQ(ranges[3].name, "psh");
  EXPECT_DOUBLE_EQ(ranges[3].lo, 0.1);
  EXPECT_DOUBLE_EQ(ranges[3].hi, 0.4);
  EXPECT_EQ(ranges[4].name, "phd");
  EXPECT_DOUBLE_EQ(ranges[4].lo, 0.0);
  EXPECT_DOUBLE_EQ(ranges[4].hi, 0.3);
  EXPECT_EQ(oc::table1_descriptions().size(), 5u);
}

TEST(Table1, ParamsFromPointOverridesOnlyTheFive) {
  osprey::num::Vector x{0.5, 0.25, 0.6, 0.3, 0.15};
  osprey::epi::MetaRvmParams p = oc::params_from_point(x);
  EXPECT_DOUBLE_EQ(p.ts, 0.5);
  EXPECT_DOUBLE_EQ(p.tv, 0.25);
  EXPECT_DOUBLE_EQ(p.pea, 0.6);
  EXPECT_DOUBLE_EQ(p.psh, 0.3);
  EXPECT_DOUBLE_EQ(p.phd, 0.15);
  osprey::epi::MetaRvmParams nominal = osprey::epi::MetaRvmParams::nominal();
  EXPECT_DOUBLE_EQ(p.de, nominal.de);
  EXPECT_DOUBLE_EQ(p.dh, nominal.dh);
  EXPECT_THROW(oc::params_from_point({0.5}), ou::InvalidArgument);
}

TEST(Table1, TaskModelProtocol) {
  auto model = std::make_shared<const osprey::epi::MetaRvm>(
      osprey::epi::MetaRvmConfig::single_group(20000, 10, 60));
  ValueObject payload;
  payload["x"] = Value::from_doubles({0.5, 0.25, 0.6, 0.3, 0.15});
  payload["replicate"] = Value(std::int64_t{2});
  Value r1 = oc::metarvm_task_model(model, 11, Value(payload));
  Value r2 = oc::metarvm_task_model(model, 11, Value(payload));
  EXPECT_TRUE(r1.contains("y"));
  EXPECT_DOUBLE_EQ(r1.at("y").as_double(), r2.at("y").as_double());
  payload["replicate"] = Value(std::int64_t{3});
  Value r3 = oc::metarvm_task_model(model, 11, Value(payload));
  EXPECT_NE(r1.at("y").as_double(), r3.at("y").as_double());
}

TEST(WastewaterSource, AdaptsGeneratorAsDataSource) {
  auto gen = std::make_shared<osprey::epi::WastewaterGenerator>(
      osprey::epi::chicago_plants()[0], osprey::epi::chicago_truths()[0],
      osprey::epi::WastewaterConfig{}, 1);
  oc::WastewaterSource source(gen);
  EXPECT_NE(source.url().find("O-Brien"), std::string::npos);
  auto day10 = source.fetch(10 * ou::kDay);
  auto day13 = source.fetch(13 * ou::kDay);
  auto day14 = source.fetch(14 * ou::kDay);
  ASSERT_TRUE(day10.has_value());
  EXPECT_EQ(*day10, *day13);   // same weekly publication
  EXPECT_NE(*day13, *day14);   // new publication on day 14
}
