#include "num/optim.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace on = osprey::num;

TEST(NelderMead, MinimizesQuadratic) {
  auto fn = [](const on::Vector& x) {
    return (x[0] - 2.0) * (x[0] - 2.0) + 3.0 * (x[1] + 1.0) * (x[1] + 1.0);
  };
  on::OptimResult r = on::nelder_mead(fn, {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 2.0, 1e-4);
  EXPECT_NEAR(r.x[1], -1.0, 1e-4);
  EXPECT_NEAR(r.f, 0.0, 1e-7);
}

TEST(NelderMead, MinimizesRosenbrock2d) {
  auto fn = [](const on::Vector& x) {
    double a = 1.0 - x[0];
    double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  on::NelderMeadOptions opt;
  opt.max_iterations = 5000;
  on::OptimResult r = on::nelder_mead(fn, {-1.2, 1.0}, opt);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, HandlesOneDimension) {
  auto fn = [](const on::Vector& x) { return std::cosh(x[0] - 0.5); };
  on::OptimResult r = on::nelder_mead(fn, {5.0});
  EXPECT_NEAR(r.x[0], 0.5, 1e-4);
}

TEST(NelderMead, RespectsIterationCap) {
  auto fn = [](const on::Vector& x) { return x[0] * x[0]; };
  on::NelderMeadOptions opt;
  opt.max_iterations = 3;
  on::OptimResult r = on::nelder_mead(fn, {100.0}, opt);
  EXPECT_LE(r.iterations, 3u);
  EXPECT_FALSE(r.converged);
}

TEST(NelderMead, CountsEvaluations) {
  std::size_t calls = 0;
  auto fn = [&calls](const on::Vector& x) {
    ++calls;
    return x[0] * x[0];
  };
  on::OptimResult r = on::nelder_mead(fn, {3.0});
  EXPECT_EQ(r.evaluations, calls);
}

TEST(Multistart, EscapesLocalMinimum) {
  // Double well: local minimum near x=2.2 (f≈1), global near x=-1.8.
  auto fn = [](const on::Vector& v) {
    double x = v[0];
    return 0.1 * std::pow(x * x - 4.0, 2.0) + 0.5 * x;
  };
  on::RngStream rng(3);
  on::OptimResult local = on::nelder_mead(fn, {2.0});
  on::OptimResult multi = on::multistart_minimize(fn, {2.0}, 12, 5.0, rng);
  EXPECT_LT(multi.f, local.f - 0.5);
  EXPECT_NEAR(multi.x[0], -2.0, 0.3);
}
