#include "emews/task_db.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "emews/task_api.hpp"
#include "util/error.hpp"

namespace oe = osprey::emews;
namespace ou = osprey::util;
using ou::Value;
using ou::ValueObject;

TEST(TaskDb, SubmitClaimCompleteLifecycle) {
  oe::TaskDb db;
  ValueObject payload;
  payload["x"] = Value(1.5);
  oe::TaskId id = db.submit("model", Value(payload));
  EXPECT_EQ(db.queued_count("model"), 1u);
  EXPECT_FALSE(db.is_done(id));

  auto claimed = db.try_claim("model", "w0");
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(*claimed, id);
  EXPECT_EQ(db.snapshot(id).status, oe::TaskStatus::kRunning);
  EXPECT_EQ(db.snapshot(id).worker, "w0");

  ValueObject result;
  result["y"] = Value(3.0);
  db.complete(id, Value(result));
  EXPECT_TRUE(db.is_done(id));
  EXPECT_EQ(db.wait(id).result.at("y").as_double(), 3.0);
  EXPECT_EQ(db.finished_count(), 1u);
}

TEST(TaskDb, PriorityOrderingThenFifo) {
  oe::TaskDb db;
  oe::TaskId low1 = db.submit("q", Value(), 0);
  oe::TaskId low2 = db.submit("q", Value(), 0);
  oe::TaskId high = db.submit("q", Value(), 5);
  EXPECT_EQ(db.try_claim("q", "w").value(), high);
  EXPECT_EQ(db.try_claim("q", "w").value(), low1);
  EXPECT_EQ(db.try_claim("q", "w").value(), low2);
  EXPECT_FALSE(db.try_claim("q", "w").has_value());
}

TEST(TaskDb, TypesAreIndependentQueues) {
  oe::TaskDb db;
  db.submit("a", Value());
  EXPECT_FALSE(db.try_claim("b", "w").has_value());
  EXPECT_TRUE(db.try_claim("a", "w").has_value());
}

TEST(TaskDb, CompleteRequiresRunning) {
  oe::TaskDb db;
  oe::TaskId id = db.submit("q", Value());
  EXPECT_THROW(db.complete(id, Value()), ou::InvalidArgument);
  db.try_claim("q", "w");
  db.complete(id, Value());
  EXPECT_THROW(db.fail(id, "late"), ou::InvalidArgument);
}

TEST(TaskDb, FailCarriesError) {
  oe::TaskDb db;
  oe::TaskId id = db.submit("q", Value());
  db.try_claim("q", "w");
  db.fail(id, "model exploded");
  oe::TaskRecord rec = db.snapshot(id);
  EXPECT_EQ(rec.status, oe::TaskStatus::kFailed);
  EXPECT_EQ(rec.error, "model exploded");
}

TEST(TaskDb, CancelQueuedOnly) {
  oe::TaskDb db;
  oe::TaskId id = db.submit("q", Value());
  EXPECT_TRUE(db.cancel(id));
  EXPECT_EQ(db.snapshot(id).status, oe::TaskStatus::kCancelled);
  EXPECT_FALSE(db.try_claim("q", "w").has_value());  // removed from queue

  oe::TaskId id2 = db.submit("q", Value());
  db.try_claim("q", "w");
  EXPECT_FALSE(db.cancel(id2));  // running: not cancellable
}

TEST(TaskDb, BlockingClaimWokenBySubmit) {
  oe::TaskDb db;
  std::optional<oe::TaskId> got;
  std::thread worker([&] { got = db.claim("q", "w"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  oe::TaskId id = db.submit("q", Value());
  worker.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, id);
}

TEST(TaskDb, CloseWakesClaimersAndCancelsQueued) {
  oe::TaskDb db;
  oe::TaskId queued = db.submit("q", Value());
  std::optional<oe::TaskId> got = oe::TaskId{123};
  std::thread worker([&] { got = db.claim("other-type", "w"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  db.close();
  worker.join();
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(db.snapshot(queued).status, oe::TaskStatus::kCancelled);
  EXPECT_TRUE(db.closed());
  EXPECT_THROW(db.submit("q", Value()), ou::InvalidArgument);
}

TEST(TaskDb, WaitForMoreFinished) {
  oe::TaskDb db;
  oe::TaskId id = db.submit("q", Value());
  std::thread completer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    db.try_claim("q", "w");
    db.complete(id, Value());
  });
  db.wait_for_more_finished(0);  // blocks until the completion above
  EXPECT_EQ(db.finished_count(), 1u);
  completer.join();
}

TEST(TaskFuture, GetReturnsResult) {
  oe::TaskDb db;
  oe::TaskQueue queue(db, "model");
  oe::TaskFuture f = queue.submit(Value(ValueObject{{"x", Value(2.0)}}));
  EXPECT_FALSE(f.is_done());
  auto id = db.try_claim("model", "w");
  ValueObject result;
  result["y"] = Value(4.0);
  db.complete(*id, Value(result));
  EXPECT_TRUE(f.is_done());
  EXPECT_DOUBLE_EQ(f.get().at("y").as_double(), 4.0);
}

TEST(TaskFuture, GetThrowsOnFailure) {
  oe::TaskDb db;
  oe::TaskQueue queue(db, "model");
  oe::TaskFuture f = queue.submit(Value());
  auto id = db.try_claim("model", "w");
  db.fail(*id, "bad");
  EXPECT_THROW(f.get(), ou::Error);
}

TEST(TaskFuture, InvalidFutureThrows) {
  oe::TaskFuture f;
  EXPECT_FALSE(f.valid());
  EXPECT_THROW(f.is_done(), ou::InvalidArgument);
}

TEST(TaskQueue, BatchSubmitAndCounting) {
  oe::TaskDb db;
  oe::TaskQueue queue(db, "model");
  std::vector<Value> payloads(5);
  auto futures = queue.submit_batch(std::move(payloads));
  EXPECT_EQ(futures.size(), 5u);
  EXPECT_EQ(oe::TaskQueue::count_done(futures), 0u);
  for (int i = 0; i < 3; ++i) {
    auto id = db.try_claim("model", "w");
    db.complete(*id, Value());
  }
  EXPECT_EQ(oe::TaskQueue::count_done(futures), 3u);
}
