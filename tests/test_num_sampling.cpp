#include "num/sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "num/stats.hpp"
#include "util/error.hpp"

namespace on = osprey::num;

TEST(Scaling, BoxRoundTrip) {
  std::vector<on::ParamRange> ranges{{"a", -1.0, 1.0}, {"b", 10.0, 20.0}};
  on::Vector u{0.25, 0.5};
  on::Vector x = on::scale_to_box(u, ranges);
  EXPECT_DOUBLE_EQ(x[0], -0.5);
  EXPECT_DOUBLE_EQ(x[1], 15.0);
  on::Vector back = on::scale_to_unit(x, ranges);
  EXPECT_NEAR(back[0], 0.25, 1e-14);
  EXPECT_NEAR(back[1], 0.5, 1e-14);
}

TEST(Scaling, DegenerateRangeThrows) {
  std::vector<on::ParamRange> ranges{{"a", 1.0, 1.0}};
  EXPECT_THROW(on::scale_to_unit({1.0}, ranges),
               osprey::util::InvalidArgument);
}

TEST(LatinHypercube, OnePointPerStratum) {
  on::RngStream rng(1);
  const std::size_t n = 32, d = 4;
  on::Matrix design = on::latin_hypercube(n, d, rng);
  for (std::size_t j = 0; j < d; ++j) {
    std::set<std::size_t> strata;
    for (std::size_t i = 0; i < n; ++i) {
      double v = design(i, j);
      ASSERT_GE(v, 0.0);
      ASSERT_LT(v, 1.0);
      strata.insert(static_cast<std::size_t>(v * static_cast<double>(n)));
    }
    EXPECT_EQ(strata.size(), n) << "dimension " << j;
  }
}

TEST(LatinHypercube, DeterministicPerStream) {
  on::RngStream a(5), b(5);
  on::Matrix d1 = on::latin_hypercube(10, 3, a);
  on::Matrix d2 = on::latin_hypercube(10, 3, b);
  EXPECT_EQ(d1.data(), d2.data());
}

TEST(SobolSequence, RangeAndDeterminism) {
  on::SobolSequence s1(5), s2(5);
  for (int i = 0; i < 100; ++i) {
    on::Vector p1 = s1.next();
    on::Vector p2 = s2.next();
    EXPECT_EQ(p1, p2);
    for (double v : p1) {
      ASSERT_GE(v, 0.0);
      ASSERT_LT(v, 1.0);
    }
  }
}

TEST(SobolSequence, FirstPointsOfDim1AreVanDerCorput) {
  on::SobolSequence seq(1);
  // Gray-code order still visits the standard dyadic points.
  std::set<double> pts;
  for (int i = 0; i < 8; ++i) pts.insert(seq.next()[0]);
  // After 8 points the sequence covers multiples of 1/8 exactly once
  // (the 0 point is skipped, 8 distinct values remain).
  EXPECT_EQ(pts.size(), 8u);
  for (double p : pts) {
    EXPECT_NEAR(std::fmod(p * 16.0, 1.0), 0.0, 1e-12);
  }
}

TEST(SobolSequence, LowDiscrepancyBeatsMcOnMeanEstimate) {
  // Integrating f(u) = prod u_j over [0,1]^3: exact value 1/8.
  on::SobolSequence seq(3);
  const std::size_t n = 4096;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    on::Vector p = seq.next();
    acc += p[0] * p[1] * p[2];
  }
  EXPECT_NEAR(acc / static_cast<double>(n), 0.125, 5e-4);
}

TEST(SobolSequence, EquidistributionPerDimension) {
  on::SobolSequence seq(10);
  const std::size_t n = 1024;
  std::vector<std::vector<double>> cols(10);
  for (std::size_t i = 0; i < n; ++i) {
    on::Vector p = seq.next();
    for (std::size_t j = 0; j < 10; ++j) cols[j].push_back(p[j]);
  }
  for (std::size_t j = 0; j < 10; ++j) {
    EXPECT_NEAR(on::mean(cols[j]), 0.5, 0.01) << "dim " << j;
  }
}

TEST(SobolSequence, DimensionLimits) {
  EXPECT_THROW(on::SobolSequence(0), osprey::util::InvalidArgument);
  EXPECT_THROW(on::SobolSequence(11), osprey::util::InvalidArgument);
  EXPECT_NO_THROW(on::SobolSequence(10));
}

TEST(SobolSequence, GenerateMatrixMatchesNext) {
  on::SobolSequence a(2), b(2);
  on::Matrix m = a.generate(5);
  for (std::size_t i = 0; i < 5; ++i) {
    on::Vector p = b.next();
    EXPECT_EQ(m.row(i), p);
  }
}

TEST(ScaleDesign, AppliesRanges) {
  std::vector<on::ParamRange> ranges{{"x", 0.0, 10.0}, {"y", -5.0, 5.0}};
  on::Matrix unit(1, 2);
  unit.set_row(0, {0.1, 0.9});
  on::Matrix scaled = on::scale_design(unit, ranges);
  EXPECT_DOUBLE_EQ(scaled(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(scaled(0, 1), 4.0);
}
