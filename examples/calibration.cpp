/// Extension demo: surrogate-based calibration of MetaRVM against an
/// observed hospitalization curve (the workflow the paper's GSA is
/// meant to enable), plus the workflow-artifact catalog from the
/// paper's future-work section.

#include <cstdio>

#include "core/artifact_catalog.hpp"
#include "core/metarvm_gsa.hpp"
#include "gsa/calibrate.hpp"
#include "num/stats.hpp"
#include "util/table.hpp"

using namespace osprey;

int main() {
  // --- "observed" data from a hidden truth ----------------------------
  auto model = std::make_shared<const epi::MetaRvm>(
      epi::MetaRvmConfig::single_group(100'000, 40, 75));
  epi::MetaRvmParams truth = epi::MetaRvmParams::nominal();
  truth.ts = 0.45;
  truth.psh = 0.22;
  num::RngStream obs_rng = num::RngStream(17).substream(0);
  auto observed_traj = model->run(truth, obs_rng);
  std::vector<double> observed;
  for (std::int64_t v : observed_traj.total_new_hospitalizations()) {
    observed.push_back(static_cast<double>(v));
  }
  std::printf("observed epidemic: %lld total hospital admissions over 75 "
              "days (hidden truth: ts=%.2f, psh=%.2f)\n",
              static_cast<long long>(
                  observed_traj.total_hospitalizations()),
              truth.ts, truth.psh);

  // --- calibrate (ts, psh), GSA having shown these matter most --------
  gsa::CalibrationConfig cfg;
  cfg.ranges = {{"ts", 0.1, 0.9}, {"psh", 0.1, 0.4}};
  cfg.n_init = 15;
  cfg.n_total = 60;
  cfg.seed = 3;
  gsa::LossFn loss = [&](const num::Vector& x) {
    epi::MetaRvmParams p = epi::MetaRvmParams::nominal();
    p.ts = x[0];
    p.psh = x[1];
    num::RngStream rng = num::RngStream(17).substream(0);
    auto traj = model->run(p, rng);
    std::vector<double> simulated;
    for (std::int64_t v : traj.total_new_hospitalizations()) {
      simulated.push_back(static_cast<double>(v));
    }
    return gsa::series_mse_log(simulated, observed);
  };
  gsa::CalibrationResult result = gsa::calibrate(cfg, loss);

  std::printf("\ncalibrated in %zu model runs: ts=%.3f, psh=%.3f "
              "(loss %.4f)\n",
              result.evaluations, result.best_x[0], result.best_x[1],
              result.best_loss);
  util::TextTable conv({"evaluations", "best loss so far"});
  for (std::size_t i = 4; i < result.trajectory.size(); i += 10) {
    conv.add_row({std::to_string(result.trajectory[i].n),
                  util::TextTable::num(result.trajectory[i].best_loss, 4)});
  }
  std::printf("%s", conv.render().c_str());

  // --- publish the pieces in the artifact catalog ---------------------
  core::ArtifactCatalog catalog;
  catalog.add({"metarvm", core::ArtifactType::kModel, core::Language::kCpp,
               "1.0.0", "stochastic metapopulation epidemic model",
               {"epidemiology", "stochastic"}, "repo://src/epi/metarvm.hpp"});
  catalog.add({"gp-calibrator", core::ArtifactType::kMeAlgorithm,
               core::Language::kR, "1.0.0",
               "GP-surrogate expected-improvement calibration",
               {"calibration", "surrogate"}, "repo://src/gsa/calibrate.hpp"});
  catalog.add({"music-gsa", core::ArtifactType::kMeAlgorithm,
               core::Language::kR, "1.0.0",
               "active-learning Sobol sensitivity analysis",
               {"gsa", "surrogate"}, "repo://src/gsa/music.hpp"});
  catalog.add({"hospitalizations-2026w01", core::ArtifactType::kDataset,
               core::Language::kCpp, "1.0.0",
               "daily hospital admissions used for calibration",
               {"epidemiology", "surveillance"},
               "alcf-eagle/ww-rt/calibration/observed.csv"});

  std::printf("\nartifact catalog (%zu entries); searching 'surrogate':\n",
              catalog.size());
  util::TextTable found({"name", "type", "language", "version"});
  for (const auto& r : catalog.search("surrogate")) {
    found.add_row({r.name, core::artifact_type_name(r.type),
                   core::language_name(r.language), r.version});
  }
  std::printf("%s", found.render().c_str());
  std::printf("\ncatalog JSON export: %zu bytes\n",
              catalog.to_json().to_json().size());
  return 0;
}
