/// Agent-based vs metapopulation MetaRVM, side by side: same parameters,
/// same population, same seeds — trajectory agreement, stochastic
/// spread, and the compute-cost gap that motivates surrogate-based GSA
/// (paper §3.3).

#include <chrono>
#include <cmath>
#include <cstdio>

#include "epi/abm.hpp"
#include "epi/metarvm.hpp"
#include "num/stats.hpp"
#include "util/table.hpp"

using namespace osprey;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  const std::int64_t pop = 50'000;
  const int days = 120;
  epi::MetaRvmParams params;
  params.ts = 0.4;

  epi::MetaRvm meta(epi::MetaRvmConfig::single_group(pop, 50, days));
  epi::AbmConfig acfg;
  acfg.n_agents = pop;
  acfg.initial_infections = 50;
  acfg.days = days;
  epi::AgentBasedModel abm(acfg);

  // One run each, timed.
  num::RngStream rng_m(7), rng_a(7);
  double t0 = now_ms();
  epi::MetaRvmTrajectory meta_traj = meta.run(params, rng_m);
  double meta_ms = now_ms() - t0;
  t0 = now_ms();
  epi::MetaRvmTrajectory abm_traj = abm.run(params, rng_a);
  double abm_ms = now_ms() - t0;

  std::printf("one 120-day run at 50k population: metapopulation %.2f ms, "
              "agent-based %.1f ms (%.0fx)\n\n",
              meta_ms, abm_ms, abm_ms / std::max(meta_ms, 1e-6));

  util::TextTable table({"day", "meta: new infections", "abm: new infections",
                         "meta: H census", "abm: H census"});
  for (int day = 10; day < days; day += 15) {
    std::size_t t = static_cast<std::size_t>(day);
    table.add_row(
        {std::to_string(day),
         std::to_string(meta_traj.groups[0].new_infections[t]),
         std::to_string(abm_traj.groups[0].new_infections[t]),
         std::to_string(meta_traj.groups[0].daily[t].h),
         std::to_string(abm_traj.groups[0].daily[t].h)});
  }
  std::printf("%s\n", table.render().c_str());

  // Replicate spread of the QoI under both models.
  std::vector<double> meta_qoi, abm_qoi;
  for (std::uint64_t r = 0; r < 8; ++r) {
    meta_qoi.push_back(meta.hospitalization_qoi(params, 11, r));
    abm_qoi.push_back(abm.hospitalization_qoi(params, 11, r));
  }
  num::Summary sm = num::summarize(meta_qoi);
  num::Summary sa = num::summarize(abm_qoi);
  std::printf("QoI across 8 replicates — metapopulation: mean %.0f (sd %.0f); "
              "agent-based: mean %.0f (sd %.0f)\n",
              sm.mean, sm.sd, sa.mean, sa.sd);
  std::printf("relative difference of means: %.1f%% (both models share the "
              "same mean field)\n",
              100.0 * std::fabs(sm.mean - sa.mean) / sm.mean);
  return 0;
}
