/// EMEWS in isolation: the decoupled task database, Futures, a worker
/// pool evaluating MetaRVM runs, and the asynchronous submit-then-poll
/// pattern a model-exploration algorithm uses.

#include <cstdio>

#include "core/metarvm_gsa.hpp"
#include "emews/task_api.hpp"
#include "emews/worker_pool.hpp"
#include "num/sampling.hpp"
#include "util/table.hpp"

using namespace osprey;
using util::Value;
using util::ValueObject;

int main() {
  emews::TaskDb db;
  emews::TaskQueue queue(db, "metarvm");

  // The model the pool evaluates: 60-day MetaRVM hospitalization QoI.
  auto model = std::make_shared<const epi::MetaRvm>(
      epi::MetaRvmConfig::single_group(80'000, 40, 60));
  emews::WorkerPool pool(
      db, "metarvm",
      [model](const Value& payload) {
        return core::metarvm_task_model(model, /*seed=*/99, payload);
      },
      4, "demo-pool");

  // Submit a 16-point Latin hypercube over the Table-1 box; submission
  // returns Futures immediately.
  num::RngStream rng(1);
  auto ranges = core::table1_ranges();
  num::Matrix design = num::scale_design(
      num::latin_hypercube(16, ranges.size(), rng), ranges);
  std::vector<emews::TaskFuture> futures;
  for (std::size_t i = 0; i < design.rows(); ++i) {
    ValueObject payload;
    payload["x"] = Value::from_doubles(design.row(i));
    payload["replicate"] = Value(std::int64_t{0});
    futures.push_back(queue.submit(Value(std::move(payload))));
  }
  std::printf("submitted %zu tasks; %zu already done (async!)\n",
              futures.size(), emews::TaskQueue::count_done(futures));

  // Poll-style collection (what an interleaved ME algorithm does), then
  // print the parameter -> QoI table.
  util::TextTable table({"ts", "tv", "pea", "psh", "phd", "hospitalizations"});
  for (std::size_t i = 0; i < futures.size(); ++i) {
    Value result = futures[i].get();
    std::vector<std::string> row;
    for (std::size_t j = 0; j < ranges.size(); ++j) {
      row.push_back(util::TextTable::num(design(i, j), 3));
    }
    row.push_back(util::TextTable::num(result.at("y").as_double(), 0));
    table.add_row(row);
  }
  std::printf("\n%s", table.render().c_str());

  pool.shutdown();
  std::printf("\npool stats: %llu tasks, utilization %.0f%%\n",
              static_cast<unsigned long long>(pool.tasks_evaluated()),
              100.0 * pool.utilization());
  for (const auto& w : pool.worker_stats()) {
    std::printf("  %-12s %llu tasks, %.1f ms busy\n", w.name.c_str(),
                static_cast<unsigned long long>(w.tasks_evaluated),
                static_cast<double>(w.busy_ns) / 1e6);
  }
  return 0;
}
