/// MetaRVM dynamics (paper Figure 3): compartment trajectories of the
/// stratified metapopulation model, printed as a daily table plus ASCII
/// epidemic curves, with replicate-to-replicate variability.

#include <algorithm>
#include <cstdio>

#include "epi/metarvm.hpp"
#include "num/stats.hpp"
#include "util/table.hpp"

using namespace osprey;

namespace {

std::string spark(const std::vector<std::int64_t>& series) {
  static const char* levels = " .:-=+*#%@";
  std::int64_t hi = 1;
  for (std::int64_t v : series) hi = std::max(hi, v);
  std::string out;
  for (std::size_t t = 0; t < series.size(); t += 2) {
    int lvl = static_cast<int>(9.0 * static_cast<double>(series[t]) /
                               static_cast<double>(hi));
    out += levels[std::clamp(lvl, 0, 9)];
  }
  return out;
}

}  // namespace

int main() {
  epi::MetaRvmConfig config = epi::MetaRvmConfig::stratified_demo(300'000, 120);
  epi::MetaRvm model(config);
  epi::MetaRvmParams params;  // nominal values
  num::RngStream rng(7);
  epi::MetaRvmTrajectory traj = model.run(params, rng);

  std::printf("MetaRVM, 300k people in %zu groups, 120 days, nominal "
              "parameters\n\n", config.groups.size());

  // Compartment snapshot every 20 days, summed over groups.
  util::TextTable table(
      {"day", "S", "V", "E", "Ia", "Ip", "Is", "H", "R", "D"});
  for (int day = 0; day <= 120; day += 20) {
    epi::Compartments total;
    for (const auto& g : traj.groups) {
      const epi::Compartments& c = g.daily[static_cast<std::size_t>(day)];
      total.s += c.s;
      total.v += c.v;
      total.e += c.e;
      total.ia += c.ia;
      total.ip += c.ip;
      total.is += c.is;
      total.h += c.h;
      total.r += c.r;
      total.d += c.d;
    }
    table.add_row({std::to_string(day), std::to_string(total.s),
                   std::to_string(total.v), std::to_string(total.e),
                   std::to_string(total.ia), std::to_string(total.ip),
                   std::to_string(total.is), std::to_string(total.h),
                   std::to_string(total.r), std::to_string(total.d)});
  }
  std::printf("%s", table.render().c_str());

  // Per-group hospitalization curves.
  std::printf("\nnew hospitalizations per day (2-day resolution):\n");
  for (const auto& g : traj.groups) {
    std::printf("  %-9s |%s|\n", g.name.c_str(),
                spark(g.new_hospitalizations).c_str());
  }

  // Stochastic replicate variability of the GSA quantity of interest.
  std::vector<double> qois;
  for (std::uint64_t r = 0; r < 20; ++r) {
    qois.push_back(model.hospitalization_qoi(params, 7, r));
  }
  num::Summary s = num::summarize(qois);
  std::printf("\nQoI (total hospitalizations by day %d) across 20 "
              "replicates:\n  mean %.0f, sd %.0f, range [%.0f, %.0f]\n",
              config.days, s.mean, s.sd, s.min, s.max);
  return 0;
}
