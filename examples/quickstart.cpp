/// Quickstart: the three layers of the library in ~60 lines.
///  1. Run the MetaRVM epidemic model.
///  2. Do a variance-based GSA of it (Table-1 parameters).
///  3. Estimate R(t) from synthetic wastewater data.

#include <cstdio>

#include "core/metarvm_gsa.hpp"
#include "epi/metarvm.hpp"
#include "epi/wastewater.hpp"
#include "gsa/sobol.hpp"
#include "rt/forecast.hpp"
#include "rt/goldstein.hpp"
#include "util/table.hpp"

using namespace osprey;

int main() {
  // --- 1. simulate an epidemic ---------------------------------------
  epi::MetaRvm model(epi::MetaRvmConfig::single_group(
      /*population=*/100'000, /*initial_infections=*/50, /*days=*/90));
  num::RngStream rng(2024);
  epi::MetaRvmTrajectory traj = model.run(epi::MetaRvmParams::nominal(), rng);
  std::printf("MetaRVM (90 days, 100k people): %lld infections, "
              "%lld hospitalizations, %lld deaths\n",
              static_cast<long long>(traj.total_infections()),
              static_cast<long long>(traj.total_hospitalizations()),
              static_cast<long long>(traj.total_deaths()));

  // --- 2. which parameters drive hospitalizations? -------------------
  gsa::SobolIndices idx = gsa::saltelli_indices(
      gsa::ModelFn([&](const num::Vector& x) {
        return core::evaluate_metarvm_qoi(model, x, /*seed=*/1,
                                          /*replicate=*/0);
      }),
      core::table1_ranges(), /*n_base=*/256);
  util::TextTable table({"parameter", "S1", "ST"});
  auto ranges = core::table1_ranges();
  for (std::size_t j = 0; j < ranges.size(); ++j) {
    table.add_row({ranges[j].name, util::TextTable::num(idx.first_order[j]),
                   util::TextTable::num(idx.total_order[j])});
  }
  std::printf("\nSobol' sensitivity of total hospitalizations (%zu runs):\n%s",
              idx.evaluations, table.render().c_str());

  // --- 3. estimate R(t) from wastewater ------------------------------
  epi::Plant plant = epi::chicago_plants()[0];
  epi::WastewaterConfig ww;
  ww.days = 90;
  epi::WastewaterGenerator gen(plant, epi::chicago_truths()[0], ww, 7);
  rt::GoldsteinConfig gconf;
  gconf.iterations = 2000;
  gconf.burnin = 1000;
  gconf.flow_liters_per_day = plant.avg_flow_mgd * 3.785e6;
  rt::GoldsteinEstimator estimator(gconf);
  rt::RtPosterior posterior = estimator.estimate(gen.samples(), 90);
  rt::RtSeries series = posterior.summarize();

  std::printf("\nR(t) from %zu wastewater samples at %s (weekly):\n",
              gen.samples().size(), plant.name.c_str());
  util::TextTable rt_table({"day", "truth", "estimate", "95% CI"});
  for (std::size_t t = 7; t < series.days(); t += 14) {
    rt_table.add_row(
        {std::to_string(t), util::TextTable::num(gen.true_rt()[t], 2),
         util::TextTable::num(series.median[t], 2),
         "[" + util::TextTable::num(series.lo95[t], 2) + ", " +
             util::TextTable::num(series.hi95[t], 2) + "]"});
  }
  std::printf("%s", rt_table.render().c_str());

  // --- 4. ...and forecast the next four weeks -------------------------
  std::vector<double> history(gen.incidence().begin(),
                              gen.incidence().begin() + 90);
  rt::Forecast fc = rt::forecast_incidence(posterior, history);
  std::printf("\n28-day incidence forecast (decision support):\n");
  util::TextTable fc_table({"lead (days)", "median", "95% band"});
  for (std::size_t t = 6; t < fc.median.size(); t += 7) {
    fc_table.add_row(
        {std::to_string(t + 1), util::TextTable::num(fc.median[t], 0),
         "[" + util::TextTable::num(fc.lo95[t], 0) + ", " +
             util::TextTable::num(fc.hi95[t], 0) + "]"});
  }
  std::printf("%s", fc_table.render().c_str());
  return 0;
}
