/// Use case 1 (paper §2): the fully automated, event-driven wastewater
/// R(t) pipeline. Builds the whole OSPREY platform — simulated Globus
/// fabric, AERO server, four IWSS-like feeds — runs 120 virtual days of
/// daily polling, and reads back the per-plant and ensemble estimates a
/// public-health stakeholder would see.

#include <cstdio>

#include "core/usecase_ww.hpp"
#include "num/stats.hpp"
#include "util/table.hpp"

using namespace osprey;

int main() {
  core::OspreyPlatform platform;
  core::WwUseCaseConfig config;
  config.horizon_days = 120;
  config.seed = 42;
  core::WastewaterUseCase usecase(platform, config);
  usecase.build();

  std::printf("Running %d virtual days of the automated workflow...\n",
              config.horizon_days);
  usecase.run_to_end();

  const auto& aero = platform.aero();
  std::printf(
      "\nAERO activity: %llu polls, %llu upstream updates detected,\n"
      "  %llu ingestion runs, %llu analysis runs (%llu failed),\n"
      "  metadata traffic: %llu queries, %llu updates\n",
      static_cast<unsigned long long>(aero.polls()),
      static_cast<unsigned long long>(aero.updates_detected()),
      static_cast<unsigned long long>(aero.ingestion_runs()),
      static_cast<unsigned long long>(aero.analysis_runs()),
      static_cast<unsigned long long>(aero.failed_runs()),
      static_cast<unsigned long long>(aero.db().query_count()),
      static_cast<unsigned long long>(aero.db().update_count()));

  util::TextTable table(
      {"plant", "population", "estimates", "RMSE vs truth", "95% coverage"});
  for (const auto& po : usecase.plant_outputs()) {
    std::vector<double> est(po.series.median.begin() + 7,
                            po.series.median.end() - 7);
    std::vector<double> truth(po.truth.begin() + 7, po.truth.end() - 7);
    table.add_row({po.plant.name,
                   std::to_string(po.plant.population_served),
                   std::to_string(po.versions),
                   util::TextTable::num(num::rmse(est, truth), 3),
                   util::TextTable::num(po.series.coverage(po.truth), 2)});
  }
  std::printf("\nPer-plant R(t) estimation quality:\n%s",
              table.render().c_str());

  if (usecase.has_aggregate()) {
    rt::RtSeries agg = usecase.aggregate_output();
    std::vector<double> truth = usecase.aggregate_truth(agg.days());
    std::printf("\nPopulation-weighted ensemble R(t) (%zu days), RMSE %.3f:\n",
                agg.days(),
                num::rmse(std::vector<double>(agg.median.begin() + 7,
                                              agg.median.end() - 7),
                          std::vector<double>(truth.begin() + 7,
                                              truth.end() - 7)));
    util::TextTable agg_table({"day", "truth", "ensemble", "95% CI"});
    for (std::size_t t = 7; t < agg.days(); t += 14) {
      agg_table.add_row(
          {std::to_string(t), util::TextTable::num(truth[t], 2),
           util::TextTable::num(agg.median[t], 2),
           "[" + util::TextTable::num(agg.lo95[t], 2) + ", " +
               util::TextTable::num(agg.hi95[t], 2) + "]"});
    }
    std::printf("%s", agg_table.render().c_str());
  }

  // Provenance export for inspection with graphviz.
  std::printf("\nProvenance graph: %zu runs recorded (DOT export: %zu bytes)\n",
              aero.db().runs().size(), aero.db().provenance_dot().size());
  return 0;
}
