/// Use case 2 (paper §3): the Shared Development Environment workflow —
/// 10 MUSIC active-learning GSA instances (one per stochastic MetaRVM
/// replicate), interleaved over an EMEWS task queue with a worker pool
/// started through the simulated PBS scheduler.

#include <cstdio>

#include "core/usecase_gsa.hpp"
#include "num/stats.hpp"
#include "util/table.hpp"

using namespace osprey;

int main() {
  core::OspreyPlatform platform;
  core::GsaUseCaseConfig config;
  config.n_replicates = 10;
  config.n_workers = 4;
  config.music.n_init = 20;
  config.music.n_total = 60;
  config.music.surrogate_mc_n = 512;
  config.model = epi::MetaRvmConfig::stratified_demo(150'000, 90);

  std::printf("Interleaving %zu MUSIC instances over an EMEWS pool of %zu "
              "workers (scheduler-launched)...\n",
              config.n_replicates, config.n_workers);
  core::GsaUseCase usecase(platform, config);
  core::GsaUseCaseResult result = usecase.run();

  std::printf("Evaluated %llu MetaRVM runs; pool utilization %.0f%%; "
              "%llu cooperative polls\n",
              static_cast<unsigned long long>(result.tasks_evaluated),
              100.0 * result.pool_utilization,
              static_cast<unsigned long long>(result.driver_polls));

  // Final first-order Sobol indices per replicate (paper Figure 5).
  auto ranges = core::table1_ranges();
  util::TextTable table({"replicate", "ts", "tv", "pea", "psh", "phd"});
  for (std::size_t r = 0; r < result.replicates.size(); ++r) {
    const auto& s1 = result.replicates[r].final_s1;
    std::vector<std::string> row{std::to_string(r)};
    for (double v : s1) row.push_back(util::TextTable::num(v, 3));
    table.add_row(row);
  }
  std::printf("\nFirst-order Sobol indices at the final design (n=%zu):\n%s",
              config.music.n_total, table.render().c_str());

  // Cross-replicate spread: the aleatoric-uncertainty picture.
  util::TextTable spread({"parameter", "mean S1", "sd across replicates"});
  for (std::size_t j = 0; j < ranges.size(); ++j) {
    std::vector<double> vals;
    for (const auto& rep : result.replicates) {
      vals.push_back(rep.final_s1[j]);
    }
    spread.add_row({ranges[j].name,
                    util::TextTable::num(num::mean(vals), 3),
                    util::TextTable::num(num::stddev(vals), 3)});
  }
  std::printf("\nStochastic variability of the sensitivity estimates:\n%s",
              spread.render().c_str());
  return 0;
}
