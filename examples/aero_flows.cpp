/// AERO in isolation: register an ingestion flow and two analysis flows
/// (one ANY-triggered, one ALL-triggered) against scripted upstream
/// sources, and watch the event-driven automation do its thing.

#include <cstdio>

#include "aero/server.hpp"
#include "util/table.hpp"

using namespace osprey;
using util::Value;
using util::ValueObject;
using util::kDay;
using util::kMinute;
using util::kSecond;

int main() {
  fabric::EventLoop loop;
  fabric::AuthService auth;
  fabric::TimerService timers(loop, auth);
  fabric::TransferService transfers(loop, auth);
  fabric::FlowsService flows(loop, auth);
  aero::AeroServer server(loop, auth, timers, transfers, flows);

  fabric::StorageEndpoint eagle("eagle", loop, auth);
  fabric::StorageEndpoint scratch("scratch", loop, auth);
  fabric::ComputeEndpoint login("login", loop, auth, 2);
  eagle.create_collection("data", server.token());
  scratch.create_collection("staging", server.token());

  // A transformation (CSV row counter) and an analysis (concatenation).
  std::string transform_fn = login.register_function(
      "count-rows",
      [](const Value& args) {
        const std::string& input = args.at("input").as_string();
        long rows = static_cast<long>(
            std::count(input.begin(), input.end(), '\n'));
        ValueObject out;
        out["output"] =
            Value("rows=" + std::to_string(rows) + "\n" + input);
        return Value(std::move(out));
      },
      30 * kSecond);
  std::string analysis_fn = login.register_function(
      "summarize",
      [](const Value& args) {
        std::string acc = "summary of " +
                          std::to_string(args.at("inputs").size()) +
                          " inputs\n";
        ValueObject outputs;
        outputs["summary.txt"] = Value(acc);
        ValueObject out;
        out["outputs"] = Value(std::move(outputs));
        return Value(std::move(out));
      },
      kMinute);

  // Two upstream feeds on different update cadences.
  auto feed_a = std::make_shared<aero::ScriptedSource>(
      "https://upstream/feed-a",
      std::vector<std::pair<fabric::SimTime, std::string>>{
          {0, "a,v1\n1,v1\n"}, {3 * kDay, "a,v2\n1,v2\n2,v2\n"}});
  auto feed_b = std::make_shared<aero::ScriptedSource>(
      "https://upstream/feed-b",
      std::vector<std::pair<fabric::SimTime, std::string>>{
          {kDay, "b,v1\n"}, {5 * kDay, "b,v2\n"}});

  auto make_spec = [&](const std::string& name,
                       std::shared_ptr<aero::DataSource> src) {
    aero::IngestionFlowSpec spec;
    spec.name = name;
    spec.source = std::move(src);
    spec.poll_period = kDay;
    spec.compute = &login;
    spec.function_id = transform_fn;
    spec.staging = &scratch;
    spec.staging_collection = "staging";
    spec.storage = &eagle;
    spec.collection = "data";
    spec.base_path = name;
    return spec;
  };
  auto ha = server.register_ingestion(make_spec("ingest-a", feed_a));
  auto hb = server.register_ingestion(make_spec("ingest-b", feed_b));
  std::printf("registered ingestion flows; transformed-data UUIDs:\n  %s\n  %s\n",
              ha.output_uuid.c_str(), hb.output_uuid.c_str());

  auto make_analysis = [&](const std::string& name,
                           std::vector<std::string> inputs,
                           aero::TriggerPolicy policy) {
    aero::AnalysisFlowSpec spec;
    spec.name = name;
    spec.input_uuids = std::move(inputs);
    spec.policy = policy;
    spec.compute = &login;
    spec.function_id = analysis_fn;
    spec.staging = &scratch;
    spec.staging_collection = "staging";
    spec.storage = &eagle;
    spec.collection = "data";
    spec.base_path = name;
    spec.output_names = {"summary.txt"};
    return spec;
  };
  server.register_analysis(make_analysis(
      "any-of-a", {ha.output_uuid}, aero::TriggerPolicy::kAny));
  server.register_analysis(make_analysis(
      "all-of-ab", {ha.output_uuid, hb.output_uuid},
      aero::TriggerPolicy::kAll));

  loop.run_until(7 * kDay);

  std::printf("\nafter 7 virtual days: %llu polls, %llu updates, "
              "%llu analysis runs\n",
              static_cast<unsigned long long>(server.polls()),
              static_cast<unsigned long long>(server.updates_detected()),
              static_cast<unsigned long long>(server.analysis_runs()));

  util::TextTable table({"run", "flow", "trigger", "status", "started",
                         "duration"});
  for (const auto& run : server.db().runs()) {
    table.add_row({std::to_string(run.run_id), run.flow_name, run.trigger,
                   run.status == aero::RunStatus::kSucceeded ? "ok" : "FAIL",
                   util::format_sim_time(run.started),
                   util::format_duration(run.ended - run.started)});
  }
  std::printf("\nprovenance (all runs):\n%s", table.render().c_str());

  std::printf("\nprovenance DOT graph:\n%s",
              server.db().provenance_dot().c_str());
  return 0;
}
