/// \file osprey_trace.cpp
/// Critical-path analyzer for OSPREY Chrome traces.
///
///   osprey_trace <trace.json>          render the critical-path report
///   osprey_trace --json <trace.json>   emit the report as JSON
///   osprey_trace --topk N <trace.json> change the top-spans table size
///   osprey_trace --self-check          exercise the pipeline end to end
///
/// The input is the JSON written by obs::chrome_trace_json (what
/// bench_fig1_workflow dumps as results/trace_fig1.json); the output is
/// the longest dependency chain that determined the makespan, the
/// per-category time breakdown, and the top-k spans by duration.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace {

using namespace osprey;

int usage() {
  std::cerr << "usage: osprey_trace [--json] [--topk N] <trace.json>\n"
               "       osprey_trace --self-check\n";
  return 2;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Build a small synthetic trace, round-trip it through the exporter and
/// parser, and check the analyzer's invariants. Returns 0 on success.
int self_check() {
  obs::TraceRecorder rec;
  // A three-stage chain with one overlapping sibling:
  //   ingest [0,10ms] -> transfer [10,25ms] -> compute [25,60ms]
  //   flow   [5,20ms] overlaps and is NOT on the critical path.
  obs::SpanId a = rec.begin_span(obs::Category::kAero, "ingest:a",
                                 obs::sim_ns(0), obs::kNoSpan);
  rec.end_span(a, obs::sim_ns(10));
  obs::SpanId f = rec.begin_span(obs::Category::kFlow, "flow:side",
                                 obs::sim_ns(5), obs::kNoSpan);
  rec.end_span(f, obs::sim_ns(20));
  obs::SpanId t = rec.begin_span(obs::Category::kTransfer, "transfer:a",
                                 obs::sim_ns(10), a);
  rec.end_span(t, obs::sim_ns(25));
  obs::SpanId c = rec.begin_span(obs::Category::kCompute, "compute:a",
                                 obs::sim_ns(25), t);
  rec.end_span(c, obs::sim_ns(60));
  rec.instant(obs::Category::kAero, "update:a", obs::sim_ns(0),
              obs::kNoSpan);

  std::string json = obs::chrome_trace_json(rec);
  std::vector<obs::SpanRecord> parsed = obs::parse_chrome_trace(json);
  std::string json2 = obs::chrome_trace_json(parsed);
  if (json != json2) {
    std::cerr << "self-check FAILED: export/parse round trip not "
                 "byte-identical\n";
    return 1;
  }

  obs::CriticalPathReport report = obs::analyze(parsed);
  if (report.makespan_ns != obs::sim_ns(60)) {
    std::cerr << "self-check FAILED: makespan " << report.makespan_ns
              << " != " << obs::sim_ns(60) << "\n";
    return 1;
  }
  if (report.path.size() != 3 || report.path_ns != obs::sim_ns(60)) {
    std::cerr << "self-check FAILED: critical path has "
              << report.path.size() << " span(s), " << report.path_ns
              << " ns\n";
    return 1;
  }
  if (report.path_ns > report.makespan_ns) {
    std::cerr << "self-check FAILED: path exceeds makespan\n";
    return 1;
  }
  if (report.instant_count != 1 || report.span_count != 4) {
    std::cerr << "self-check FAILED: span/instant counts off\n";
    return 1;
  }
  std::cout << "osprey_trace self-check OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool as_json = false;
  std::size_t top_k = 10;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-check") == 0) return self_check();
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[i], "--topk") == 0 && i + 1 < argc) {
      top_k = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) return usage();

  try {
    std::vector<obs::SpanRecord> spans =
        obs::parse_chrome_trace(read_text_file(path));
    obs::CriticalPathReport report = obs::analyze(std::move(spans), top_k);
    if (as_json) {
      std::cout << obs::report_json(report).to_json() << "\n";
    } else {
      std::cout << obs::render_report(report);
    }
  } catch (const std::exception& e) {
    std::cerr << "osprey_trace: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
