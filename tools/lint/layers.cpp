#include "lint/layers.hpp"

#include <sstream>

namespace osprey::lint {

namespace {

std::vector<std::string> split_words(const std::string& line) {
  std::istringstream ss(line);
  std::vector<std::string> words;
  std::string w;
  while (ss >> w) words.push_back(w);
  return words;
}

/// Iterative three-color DFS cycle check over the declared edges; a
/// back edge is reported with the offending module pair.
void check_dag(const LayerConfig& config, std::vector<std::string>& errors) {
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const auto& [m, _] : config.deps) color[m] = Color::kWhite;

  for (const auto& [root, _] : config.deps) {
    if (color[root] != Color::kWhite) continue;
    std::vector<std::pair<std::string, std::size_t>> stack;
    stack.emplace_back(root, 0);
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      const auto& deps = config.deps.at(node);
      if (idx >= deps.size()) {
        color[node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      auto it = deps.begin();
      std::advance(it, idx++);
      const std::string& next = *it;
      auto cit = color.find(next);
      if (cit == color.end()) continue;  // undeclared dep; separate error
      if (cit->second == Color::kGray) {
        errors.push_back("declared layering is cyclic: '" + node +
                         "' -> '" + next + "' closes a cycle");
        return;
      }
      if (cit->second == Color::kWhite) {
        cit->second = Color::kGray;
        stack.emplace_back(next, 0);
      }
    }
  }
}

}  // namespace

LayerConfig parse_layers(const std::string& content,
                         std::vector<std::string>& errors) {
  LayerConfig config;
  std::istringstream in(content);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::vector<std::string> words = split_words(line);
    if (words.empty()) continue;
    const std::string& kind = words[0];
    if (kind == "layer") {
      if (words.size() < 3 || words[2] != "=") {
        errors.push_back("line " + std::to_string(lineno) +
                         ": expected 'layer <module> = [dep ...]'");
        continue;
      }
      auto [it, inserted] = config.deps.emplace(
          words[1], std::set<std::string>(words.begin() + 3, words.end()));
      if (!inserted) {
        errors.push_back("line " + std::to_string(lineno) +
                         ": duplicate layer declaration for '" + words[1] +
                         "'");
      } else if (it->second.count(words[1]) != 0) {
        errors.push_back("line " + std::to_string(lineno) + ": module '" +
                         words[1] + "' lists itself as a dependency");
      }
    } else if (kind == "taint-entry") {
      if (words.size() != 2) {
        errors.push_back("line " + std::to_string(lineno) +
                         ": expected 'taint-entry <module>'");
        continue;
      }
      config.taint_entries.insert(words[1]);
    } else if (kind == "taint-barrier") {
      if (words.size() != 2) {
        errors.push_back("line " + std::to_string(lineno) +
                         ": expected 'taint-barrier <path-prefix>'");
        continue;
      }
      config.taint_barriers.push_back(words[1]);
    } else {
      errors.push_back("line " + std::to_string(lineno) +
                       ": unknown declaration '" + kind + "'");
    }
  }

  // Every declared dep must itself be declared, so a typo cannot
  // silently allow an edge.
  for (const auto& [module, deps] : config.deps) {
    for (const std::string& dep : deps) {
      if (!config.declared(dep)) {
        errors.push_back("module '" + module + "' depends on undeclared '" +
                         dep + "'");
      }
    }
  }
  for (const std::string& entry : config.taint_entries) {
    if (!config.declared(entry)) {
      errors.push_back("taint-entry '" + entry + "' is not a declared layer");
    }
  }
  if (errors.empty()) check_dag(config, errors);
  return config;
}

}  // namespace osprey::lint
