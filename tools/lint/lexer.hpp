#pragma once

/// \file lexer.hpp
/// Comment / string / raw-string aware C++ tokenizer. It is not a full
/// phase-3 lexer — it does not splice universal-character-names or run
/// the preprocessor — but it is exact about the things that made the v1
/// line-regex scanner lie: comment boundaries (including multi-line
/// block comments), string and char literals, raw strings with custom
/// delimiters, digit separators, and #include directives that only
/// count when they are real directives.

#include <string>

#include "lint/token.hpp"

namespace osprey::lint {

/// Tokenize `content`. Never throws on malformed input; unterminated
/// constructs are closed at end-of-file.
LexedFile lex(const std::string& content);

}  // namespace osprey::lint
