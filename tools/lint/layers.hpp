#pragma once

/// \file layers.hpp
/// Declared module-layering DAG plus taint configuration, parsed from
/// tools/osprey_layers.txt. The file is checked in and reviewed like
/// code: changing an allowed edge is an architectural decision, not a
/// lint suppression.
///
/// Syntax (one declaration per line, '#' comments):
///
///   layer <module> = [dep ...]     allowed DIRECT includes for a src/
///                                  module; a src module missing from
///                                  the file fails the layering rule.
///   taint-entry <module>           modules whose functions are
///                                  determinism-taint entry points.
///   taint-barrier <path-prefix>    files whose functions are the
///                                  sanctioned owners of raw clocks /
///                                  threads / env: seeds inside them are
///                                  legal and taint never propagates
///                                  through them (e.g. src/util/clock.).

#include <map>
#include <set>
#include <string>
#include <vector>

namespace osprey::lint {

struct LayerConfig {
  /// module -> allowed direct dependency modules (within src/).
  std::map<std::string, std::set<std::string>> deps;
  std::set<std::string> taint_entries;
  std::vector<std::string> taint_barriers;  // path prefixes

  bool declared(const std::string& module) const {
    return deps.count(module) != 0;
  }
  bool edge_allowed(const std::string& from, const std::string& to) const {
    auto it = deps.find(from);
    return it != deps.end() && it->second.count(to) != 0;
  }
  bool barrier(const std::string& path) const {
    for (const std::string& prefix : taint_barriers) {
      if (path.rfind(prefix, 0) == 0) return true;
    }
    return false;
  }
};

/// Parse the config. Syntax problems and a cyclic declared DAG are
/// reported into `errors` (empty = valid).
LayerConfig parse_layers(const std::string& content,
                         std::vector<std::string>& errors);

}  // namespace osprey::lint
