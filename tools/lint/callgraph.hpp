#pragma once

/// \file callgraph.hpp
/// Function-granularity call-graph approximation over the token stream.
/// Scope tracking (namespaces, classes) yields qualified definition
/// names; call sites inside bodies are resolved by qualified-name
/// suffix when qualification is written and by base name otherwise, so
/// virtual dispatch and overload sets are handled conservatively (a
/// call may reach every definition sharing the name). That conservatism
/// is exactly what the determinism-taint rule wants: a path that MIGHT
/// exist must be proven absent, not assumed absent.

#include <cstddef>
#include <string>
#include <vector>

#include "lint/token.hpp"

namespace osprey::lint {

struct CallSite {
  /// Written qualification, outermost first (for `a::B::f(` this is
  /// {"a","B"}); empty for unqualified and member calls.
  std::vector<std::string> quals;
  std::string name;
  std::size_t line = 0;
};

/// A direct use of a non-deterministic primitive inside a function body.
struct TaintSeed {
  std::string kind;    // "wall-clock", "rng", "thread", "env", "unordered-iter"
  std::string symbol;  // e.g. "std::steady_clock", "rand()"
  std::size_t line = 0;
};

struct FunctionDef {
  std::string qualified;  // e.g. "osprey::fabric::EventLoop::run"
  std::string base;       // "run"
  std::string file;       // root-relative path of the defining file
  std::size_t line = 0;   // line of the definition's name
  std::vector<CallSite> calls;
  std::vector<TaintSeed> seeds;
};

/// Extract every function definition (with its call sites and taint
/// seeds) from one lexed file.
std::vector<FunctionDef> extract_functions(const std::string& file,
                                           const LexedFile& lexed);

}  // namespace osprey::lint
