#include "lint/callgraph.hpp"

#include <cctype>
#include <set>

namespace osprey::lint {

namespace {

const std::set<std::string>& non_callable_keywords() {
  static const std::set<std::string> kSet = {
      "if",        "for",      "while",    "switch",   "return",
      "sizeof",    "alignof",  "alignas",  "decltype", "catch",
      "new",       "delete",   "co_await", "co_return", "co_yield",
      "static_assert", "noexcept", "throw", "requires", "typeid",
      "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
      "assert",    "defined",  "this",     "operator",
      // Fundamental-type names (so `operator bool()` and function
      // pointers `void (*f)(int)` are never taken for definitions).
      "bool", "char", "int", "long", "short", "float", "double", "void",
      "auto", "unsigned", "signed", "wchar_t", "char8_t", "char16_t",
      "char32_t",
  };
  return kSet;
}

bool is_ident(const Token& t) { return t.kind == Tok::kIdent; }

/// Attribute-macro heuristic: SHOUTY_CASE identifiers of length > 1.
bool all_caps(const std::string& s) {
  if (s.size() < 2) return false;
  bool has_alpha = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

class Extractor {
 public:
  Extractor(const std::string& file, const LexedFile& lexed)
      : file_(file), toks_(lexed.tokens) {}

  std::vector<FunctionDef> run() {
    collect_unordered_names();
    parse_toplevel();
    return std::move(defs_);
  }

 private:
  // -- helpers -------------------------------------------------------------

  /// Index of the ')' matching the '(' at `open`, or npos.
  std::size_t match_paren(std::size_t open) const {
    int depth = 0;
    for (std::size_t j = open; j < toks_.size(); ++j) {
      if (is_punct(toks_[j], "(")) ++depth;
      else if (is_punct(toks_[j], ")") && --depth == 0) return j;
    }
    return npos;
  }

  std::size_t match_brace(std::size_t open) const {
    int depth = 0;
    for (std::size_t j = open; j < toks_.size(); ++j) {
      if (is_punct(toks_[j], "{")) ++depth;
      else if (is_punct(toks_[j], "}") && --depth == 0) return j;
    }
    return npos;
  }

  /// Skip a balanced template-argument list starting at '<'. Returns the
  /// index after the matching '>', or `open` unchanged when the '<'
  /// looks like a comparison (hits ';' or '{' first).
  std::size_t skip_angles(std::size_t open) const {
    int depth = 0;
    for (std::size_t j = open; j < toks_.size(); ++j) {
      const Token& t = toks_[j];
      if (is_punct(t, "<")) ++depth;
      else if (is_punct(t, ">") && --depth == 0) return j + 1;
      else if (is_punct(t, ";") || is_punct(t, "{")) break;
    }
    return open;
  }

  // -- unordered-container declaration tracking ----------------------------

  static bool unordered_type_name(const std::string& s) {
    return s == "unordered_map" || s == "unordered_set" ||
           s == "unordered_multimap" || s == "unordered_multiset";
  }

  /// Record identifiers declared with an unordered container type, plus
  /// one level of `using Alias = std::unordered_*<...>` indirection, so
  /// range-for statements over them can be recognized as order-unstable.
  void collect_unordered_names() {
    std::set<std::string> type_names;  // aliases naming unordered types
    for (std::size_t j = 0; j + 2 < toks_.size(); ++j) {
      if (is_ident(toks_[j]) && toks_[j].text == "using" &&
          is_ident(toks_[j + 1]) && is_punct(toks_[j + 2], "=")) {
        for (std::size_t k = j + 3;
             k < toks_.size() && !is_punct(toks_[k], ";"); ++k) {
          if (is_ident(toks_[k]) && unordered_type_name(toks_[k].text)) {
            type_names.insert(toks_[j + 1].text);
            break;
          }
        }
      }
    }
    for (std::size_t j = 0; j < toks_.size(); ++j) {
      if (!is_ident(toks_[j])) continue;
      bool is_container = unordered_type_name(toks_[j].text);
      bool is_alias = type_names.count(toks_[j].text) != 0;
      if (!is_container && !is_alias) continue;
      std::size_t k = j + 1;
      if (k < toks_.size() && is_punct(toks_[k], "<")) k = skip_angles(k);
      while (k < toks_.size() &&
             (is_punct(toks_[k], "&") || is_punct(toks_[k], "*") ||
              (is_ident(toks_[k]) && toks_[k].text == "const"))) {
        ++k;
      }
      if (k < toks_.size() && is_ident(toks_[k])) {
        unordered_names_.insert(toks_[k].text);
      }
    }
  }

  // -- top-level scope walk ------------------------------------------------

  void parse_toplevel() {
    std::size_t i = 0;
    while (i < toks_.size()) {
      const Token& t = toks_[i];
      if (is_punct(t, "{")) {
        scopes_.push_back("");
        ++i;
        continue;
      }
      if (is_punct(t, "}")) {
        if (!scopes_.empty()) scopes_.pop_back();
        ++i;
        continue;
      }
      if (is_ident(t) && t.text == "namespace") {
        i = parse_namespace(i);
        continue;
      }
      if (is_ident(t) && t.text == "template") {
        // Skip the parameter list so `template <class T>` cannot be
        // taken for a class-head (and the declaration after it parses
        // normally).
        ++i;
        if (i < toks_.size() && is_punct(toks_[i], "<")) i = skip_angles(i);
        continue;
      }
      if (is_ident(t) && (t.text == "class" || t.text == "struct")) {
        i = parse_class(i);
        continue;
      }
      if (is_ident(t) && t.text == "enum") {
        i = parse_enum(i);
        continue;
      }
      if (is_punct(t, "(")) {
        i = try_function(i);
        continue;
      }
      ++i;
    }
  }

  std::size_t parse_namespace(std::size_t i) {
    std::size_t j = i + 1;
    std::string name;
    while (j < toks_.size() && is_ident(toks_[j])) {
      if (!name.empty()) name += "::";
      name += toks_[j].text;
      ++j;
      if (j < toks_.size() && is_punct(toks_[j], "::")) ++j;
      else break;
    }
    if (j < toks_.size() && is_punct(toks_[j], "{")) {
      scopes_.push_back(name);  // "" for an anonymous namespace
      return j + 1;
    }
    // Namespace alias or using-directive fragment: skip to ';'.
    while (j < toks_.size() && !is_punct(toks_[j], ";") &&
           !is_punct(toks_[j], "{")) {
      ++j;
    }
    return j + 1;
  }

  std::size_t parse_class(std::size_t i) {
    std::size_t j = i + 1;
    std::string name;
    // Last identifier before the base-clause/brace is the class name
    // (skips attribute macros like OSPREY_CAPABILITY("mutex")).
    while (j < toks_.size()) {
      const Token& t = toks_[j];
      if (is_ident(t) && t.text != "final" && t.text != "alignas") {
        name = t.text;
        ++j;
        continue;
      }
      if (is_punct(t, "(")) {  // macro arguments
        std::size_t q = match_paren(j);
        if (q == npos) return j + 1;
        j = q + 1;
        continue;
      }
      if (is_punct(t, "<")) {  // template-id specialization
        j = skip_angles(j);
        continue;
      }
      break;
    }
    // Past the name: scan the (optional) base clause to '{' (definition)
    // or ';'/'=' (declaration / variable) WITHOUT updating the name, so
    // `class Foo : public Bar {` keeps the name Foo.
    while (j < toks_.size()) {
      const Token& t = toks_[j];
      if (is_punct(t, "{")) {
        scopes_.push_back(name);
        return j + 1;
      }
      if (is_punct(t, ";") || is_punct(t, "=") || is_punct(t, ")")) {
        return j + 1;
      }
      if (is_punct(t, "<")) {
        j = skip_angles(j);
        continue;
      }
      ++j;
    }
    return j;
  }

  std::size_t parse_enum(std::size_t i) {
    std::size_t j = i + 1;
    while (j < toks_.size() && !is_punct(toks_[j], "{") &&
           !is_punct(toks_[j], ";")) {
      ++j;
    }
    if (j < toks_.size() && is_punct(toks_[j], "{")) {
      std::size_t close = match_brace(j);
      return close == npos ? j + 1 : close + 1;
    }
    return j + 1;
  }

  // -- function-definition detection ---------------------------------------

  /// At a '(' in declaration scope. Either records a function definition
  /// (consuming its body) or skips the balanced parens.
  std::size_t try_function(std::size_t open) {
    std::size_t close = match_paren(open);
    if (close == npos) return open + 1;

    // Walk back over the declarator-id: ident (:: ident)* ending at open-1.
    if (open == 0 || !is_ident(toks_[open - 1])) return close + 1;
    std::string base = toks_[open - 1].text;
    if (non_callable_keywords().count(base) != 0) return close + 1;
    std::vector<std::string> quals;
    std::size_t k = open - 1;
    while (k >= 2 && is_punct(toks_[k - 1], "::") && is_ident(toks_[k - 2])) {
      quals.insert(quals.begin(), toks_[k - 2].text);
      k -= 2;
    }

    std::size_t body = find_body(close + 1);
    if (body == npos) return close + 1;

    FunctionDef def;
    def.base = base;
    def.file = file_;
    def.line = toks_[open - 1].line;
    std::string q;
    for (const std::string& s : scopes_) {
      if (s.empty()) continue;
      q += s;
      q += "::";
    }
    for (const std::string& s : quals) {
      q += s;
      q += "::";
    }
    def.qualified = q + base;

    std::size_t body_end = match_brace(body);
    if (body_end == npos) body_end = toks_.size();
    scan_body(body, body_end, def);
    defs_.push_back(std::move(def));
    return body_end + 1;
  }

  /// From the token after the parameter list's ')': returns the index of
  /// the body '{', or npos when this is not a function definition.
  /// Handles cv/ref qualifiers, noexcept(...), trailing return types,
  /// constructor initializer lists and function-try-blocks.
  std::size_t find_body(std::size_t r) {
    while (r < toks_.size()) {
      const Token& t = toks_[r];
      if (is_punct(t, "{")) return r;
      if (is_punct(t, ";") || is_punct(t, ",") || is_punct(t, "=") ||
          is_punct(t, ")")) {
        return npos;
      }
      if (is_ident(t)) {
        if (t.text == "const" || t.text == "volatile" || t.text == "final" ||
            t.text == "override" || t.text == "mutable" || t.text == "try") {
          ++r;
          continue;
        }
        if (t.text == "noexcept" || t.text == "throw" ||
            t.text == "requires" || all_caps(t.text)) {
          // ALL_CAPS covers attribute macros such as OSPREY_REQUIRES(m)
          // between the parameter list and the body.
          ++r;
          if (r < toks_.size() && is_punct(toks_[r], "(")) {
            std::size_t q = match_paren(r);
            if (q == npos) return npos;
            r = q + 1;
          }
          continue;
        }
        return npos;  // e.g. `int x (5), y;` — a declarator, not a body
      }
      if (is_punct(t, "&")) {
        ++r;
        continue;
      }
      if (is_punct(t, "-") && r + 1 < toks_.size() &&
          is_punct(toks_[r + 1], ">")) {
        // Trailing return type: consume type tokens up to '{' or ';'.
        r += 2;
        while (r < toks_.size() && !is_punct(toks_[r], "{") &&
               !is_punct(toks_[r], ";")) {
          if (is_punct(toks_[r], "(")) {
            std::size_t q = match_paren(r);
            if (q == npos) return npos;
            r = q + 1;
          } else if (is_punct(toks_[r], "<")) {
            r = skip_angles(r);
          } else {
            ++r;
          }
        }
        continue;
      }
      if (is_punct(t, ":")) return find_body_after_init_list(r + 1);
      return npos;
    }
    return npos;
  }

  /// Constructor initializer list: `: member(expr), other{expr} {`.
  std::size_t find_body_after_init_list(std::size_t r) {
    while (r < toks_.size()) {
      // Member / base name, possibly qualified or templated.
      while (r < toks_.size() &&
             (is_ident(toks_[r]) || is_punct(toks_[r], "::"))) {
        ++r;
        if (r < toks_.size() && is_punct(toks_[r], "<")) r = skip_angles(r);
      }
      if (r >= toks_.size()) return npos;
      if (is_punct(toks_[r], "(")) {
        std::size_t q = match_paren(r);
        if (q == npos) return npos;
        r = q + 1;
      } else if (is_punct(toks_[r], "{")) {
        std::size_t q = match_brace(r);
        if (q == npos) return npos;
        r = q + 1;
      } else {
        return npos;
      }
      // Pack expansion after the initializer: base(args)...
      while (r + 0 < toks_.size() && is_punct(toks_[r], ".")) ++r;
      if (r < toks_.size() && is_punct(toks_[r], ",")) {
        ++r;
        continue;
      }
      if (r < toks_.size() && is_punct(toks_[r], "{")) return r;
      return npos;
    }
    return npos;
  }

  // -- body scan: call sites + taint seeds ---------------------------------

  static bool wall_clock_ident(const std::string& s) {
    return s == "system_clock" || s == "steady_clock" ||
           s == "high_resolution_clock";
  }
  static bool wall_clock_call(const std::string& s) {
    return s == "gettimeofday" || s == "clock_gettime" || s == "localtime" ||
           s == "mktime";
  }

  void scan_body(std::size_t begin, std::size_t end, FunctionDef& def) {
    for (std::size_t j = begin; j < end; ++j) {
      const Token& t = toks_[j];
      if (!is_ident(t)) continue;
      const std::string& s = t.text;
      bool call_next = j + 1 < end && is_punct(toks_[j + 1], "(");

      // Taint seeds -------------------------------------------------------
      if (wall_clock_ident(s)) {
        def.seeds.push_back({"wall-clock", "std::chrono::" + s, t.line});
      } else if (s == "random_device") {
        def.seeds.push_back({"rng", "std::random_device", t.line});
      } else if ((s == "rand" || s == "srand") && call_next) {
        def.seeds.push_back({"rng", s + "()", t.line});
      } else if (wall_clock_call(s) && call_next) {
        def.seeds.push_back({"wall-clock", s + "()", t.line});
      } else if (s == "getenv" && call_next) {
        def.seeds.push_back({"env", "getenv()", t.line});
      } else if ((s == "thread" || s == "jthread") && j >= 2 &&
                 is_punct(toks_[j - 1], "::") && is_ident(toks_[j - 2]) &&
                 toks_[j - 2].text == "std") {
        def.seeds.push_back({"thread", "std::" + s, t.line});
      } else if (s == "time" && call_next && bare_or_std_qualified(j)) {
        def.seeds.push_back({"wall-clock", "time()", t.line});
      } else if (s == "for" && call_next) {
        scan_range_for(j + 1, end, def);
      }

      // Call sites --------------------------------------------------------
      if (call_next && non_callable_keywords().count(s) == 0) {
        CallSite site;
        site.name = s;
        site.line = t.line;
        std::size_t k = j;
        bool member = false;
        while (k >= 2 && is_punct(toks_[k - 1], "::") &&
               is_ident(toks_[k - 2])) {
          site.quals.insert(site.quals.begin(), toks_[k - 2].text);
          k -= 2;
        }
        if (k >= 1 && (is_punct(toks_[k - 1], ".") ||
                       is_punct(toks_[k - 1], ">"))) {
          member = true;  // obj.f( / obj->f(
        }
        if (member) site.quals.clear();
        def.calls.push_back(std::move(site));
      }
    }
  }

  /// True when the identifier at `j` is written bare or as std::name —
  /// i.e. not a member access (x.time(...)) and not a declaration
  /// (`SimTime time(0)`).
  bool bare_or_std_qualified(std::size_t j) const {
    if (j == 0) return true;
    const Token& prev = toks_[j - 1];
    if (is_punct(prev, ".") || is_punct(prev, ">") || is_ident(prev)) {
      return false;
    }
    if (is_punct(prev, "::")) {
      return j >= 2 && is_ident(toks_[j - 2]) && toks_[j - 2].text == "std";
    }
    return true;
  }

  /// `j` is at the '(' of a for statement. A range-for whose range
  /// expression names an unordered container (declared in this file or
  /// spelled inline) seeds the enclosing function: iteration order is
  /// implementation-defined, so anything derived from it in order is
  /// not replayable.
  void scan_range_for(std::size_t j, std::size_t end, FunctionDef& def) {
    std::size_t close = match_paren(j);
    if (close == npos || close > end) return;
    std::size_t colon = npos;
    int depth = 0;
    for (std::size_t k = j; k < close; ++k) {
      if (is_punct(toks_[k], "(")) ++depth;
      else if (is_punct(toks_[k], ")")) --depth;
      else if (depth == 1 && is_punct(toks_[k], ":")) {
        colon = k;
        break;
      }
    }
    if (colon == npos) return;
    for (std::size_t k = colon + 1; k < close; ++k) {
      if (!is_ident(toks_[k])) continue;
      if (unordered_names_.count(toks_[k].text) != 0 ||
          unordered_type_name(toks_[k].text)) {
        def.seeds.push_back({"unordered-iter",
                             "range-for over '" + toks_[k].text + "'",
                             toks_[k].line});
        return;
      }
    }
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  const std::string& file_;
  const std::vector<Token>& toks_;
  std::vector<std::string> scopes_;
  std::set<std::string> unordered_names_;
  std::vector<FunctionDef> defs_;
};

}  // namespace

std::vector<FunctionDef> extract_functions(const std::string& file,
                                           const LexedFile& lexed) {
  return Extractor(file, lexed).run();
}

}  // namespace osprey::lint
