#pragma once

/// \file token.hpp
/// Token model for the osprey_lint whole-program analyzer. The lexer
/// (lint/lexer.hpp) turns a translation unit into this representation;
/// every downstream pass (token rules, include graph, call graph, taint
/// reachability) works on it instead of re-scanning text, so comments,
/// string literals and raw strings can never trip a rule.

#include <cstddef>
#include <string>
#include <vector>

namespace osprey::lint {

enum class Tok {
  kIdent,   // identifiers and keywords (the analyzer does not split them)
  kNumber,  // pp-numbers, including digit separators (1'000'000)
  kString,  // "..." and R"delim(...)delim" (text omitted)
  kChar,    // '...'
  kPunct,   // punctuation; "::" is merged into a single token
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  std::size_t line = 0;  // 1-based line of the token's first character
};

/// One #include directive that is really a directive (not one quoted in
/// a comment, string literal or raw string).
struct IncludeDirective {
  std::size_t line = 0;
  std::string path;     // as written between the delimiters
  bool angled = false;  // <...> vs "..."
};

/// One `osprey-lint: allow(<rule>)` suppression found in a comment.
struct AllowMark {
  std::size_t line = 0;
  std::string rule;
  /// The surrounding comment carries the word "grandfathered": a
  /// one-PR amnesty marker that the stale-suppression rule rejects once
  /// the introducing PR has merged.
  bool grandfathered = false;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<AllowMark> allows;
  std::size_t line_count = 0;
};

}  // namespace osprey::lint
