#include "lint/lexer.hpp"

#include <cctype>

namespace osprey::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Scan one comment's text for `osprey-lint: allow(<rule>)` markers.
/// `line_of(offset)` maps an offset within `text` to a source line so a
/// multi-line block comment attributes each marker to its own line.
template <typename LineOf>
void scan_allows(const std::string& text, const LineOf& line_of,
                 std::vector<AllowMark>& out) {
  static const std::string kMarker = "osprey-lint: allow(";
  std::size_t pos = 0;
  while ((pos = text.find(kMarker, pos)) != std::string::npos) {
    std::size_t rule_begin = pos + kMarker.size();
    std::size_t rule_end = text.find(')', rule_begin);
    if (rule_end == std::string::npos) break;
    AllowMark mark;
    mark.line = line_of(pos);
    mark.rule = text.substr(rule_begin, rule_end - rule_begin);
    // The amnesty marker must sit in the same comment, after the allow
    // but before the next line break (one marker per suppression line).
    std::size_t eol = text.find('\n', rule_end);
    std::size_t search_end = eol == std::string::npos ? text.size() : eol;
    mark.grandfathered =
        text.find("grandfathered", rule_end) != std::string::npos &&
        text.find("grandfathered", rule_end) < search_end;
    out.push_back(std::move(mark));
    pos = rule_end;
  }
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  LexedFile run() {
    while (i_ < src_.size()) step();
    out_.line_count = line_;
    return std::move(out_);
  }

 private:
  char cur() const { return src_[i_]; }
  char peek(std::size_t ahead = 1) const {
    return i_ + ahead < src_.size() ? src_[i_ + ahead] : '\0';
  }

  void advance() {
    if (src_[i_] == '\n') {
      ++line_;
      line_has_code_ = false;
    }
    ++i_;
  }

  void emit(Tok kind, std::string text, std::size_t line) {
    out_.tokens.push_back({kind, std::move(text), line});
    line_has_code_ = true;
  }

  void step() {
    char c = cur();
    if (c == '\\' && peek() == '\n') {  // line continuation
      advance();
      advance();
      return;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      return;
    }
    if (c == '/' && peek() == '/') {
      lex_line_comment();
      return;
    }
    if (c == '/' && peek() == '*') {
      lex_block_comment();
      return;
    }
    if (c == '#' && !line_has_code_) {
      lex_directive();
      return;
    }
    if (c == '"') {
      lex_string();
      return;
    }
    if (c == '\'') {
      lex_char();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      lex_number();
      return;
    }
    if (ident_start(c)) {
      lex_ident_or_prefixed_string();
      return;
    }
    if (c == ':' && peek() == ':') {
      emit(Tok::kPunct, "::", line_);
      advance();
      advance();
      return;
    }
    emit(Tok::kPunct, std::string(1, c), line_);
    advance();
  }

  void lex_line_comment() {
    std::size_t start_line = line_;
    std::string text;
    while (i_ < src_.size() && cur() != '\n') {
      text.push_back(cur());
      advance();
    }
    scan_allows(text, [start_line](std::size_t) { return start_line; },
                out_.allows);
  }

  void lex_block_comment() {
    std::size_t start_line = line_;
    advance();  // '/'
    advance();  // '*'
    std::string text;
    std::vector<std::size_t> newline_offsets;
    while (i_ < src_.size()) {
      if (cur() == '*' && peek() == '/') {
        advance();
        advance();
        break;
      }
      if (cur() == '\n') newline_offsets.push_back(text.size());
      text.push_back(cur());
      advance();
    }
    scan_allows(text,
                [&](std::size_t off) {
                  std::size_t l = start_line;
                  for (std::size_t nl : newline_offsets) {
                    if (nl < off) ++l;
                  }
                  return l;
                },
                out_.allows);
  }

  /// At a '#' that begins a preprocessor directive. #include gets its
  /// header-name captured as an IncludeDirective (and emits no tokens);
  /// every other directive falls through to normal tokenization.
  void lex_directive() {
    std::size_t start_line = line_;
    std::size_t save = i_;
    advance();  // '#'
    while (i_ < src_.size() && (cur() == ' ' || cur() == '\t')) advance();
    std::string word;
    while (i_ < src_.size() && ident_char(cur())) {
      word.push_back(cur());
      advance();
    }
    if (word != "include") {
      // Rewind conceptually: emit '#' + the word and continue normally.
      emit(Tok::kPunct, "#", start_line);
      if (!word.empty()) emit(Tok::kIdent, word, start_line);
      (void)save;
      return;
    }
    while (i_ < src_.size() && (cur() == ' ' || cur() == '\t')) advance();
    if (i_ >= src_.size()) return;
    if (cur() == '<' || cur() == '"') {
      char close = cur() == '<' ? '>' : '"';
      bool angled = cur() == '<';
      advance();
      std::string path;
      while (i_ < src_.size() && cur() != close && cur() != '\n') {
        path.push_back(cur());
        advance();
      }
      if (i_ < src_.size() && cur() == close) advance();
      out_.includes.push_back({start_line, std::move(path), angled});
      line_has_code_ = true;  // rest of line is not a directive start
    }
    // A computed include (#include MACRO) is left to normal lexing.
  }

  void lex_string() {
    std::size_t start_line = line_;
    advance();  // opening '"'
    while (i_ < src_.size() && cur() != '"') {
      if (cur() == '\\' && i_ + 1 < src_.size()) advance();
      if (cur() == '\n') break;  // unterminated; be forgiving
      advance();
    }
    if (i_ < src_.size() && cur() == '"') advance();
    emit(Tok::kString, "", start_line);
  }

  void lex_raw_string() {
    std::size_t start_line = line_;
    advance();  // '"'
    std::string delim;
    while (i_ < src_.size() && cur() != '(' && cur() != '\n') {
      delim.push_back(cur());
      advance();
    }
    if (i_ < src_.size() && cur() == '(') advance();
    const std::string terminator = ")" + delim + "\"";
    while (i_ < src_.size()) {
      if (cur() == ')' && src_.compare(i_, terminator.size(), terminator) == 0) {
        for (std::size_t k = 0; k < terminator.size(); ++k) advance();
        break;
      }
      advance();
    }
    emit(Tok::kString, "", start_line);
  }

  void lex_char() {
    std::size_t start_line = line_;
    advance();  // opening '\''
    while (i_ < src_.size() && cur() != '\'') {
      if (cur() == '\\' && i_ + 1 < src_.size()) advance();
      if (cur() == '\n') break;
      advance();
    }
    if (i_ < src_.size() && cur() == '\'') advance();
    emit(Tok::kChar, "", start_line);
  }

  /// pp-number: digits, identifier chars, '.', digit separators, and
  /// exponent signs. This swallows 1'000'000 so the separator quotes
  /// can never open a bogus char literal.
  void lex_number() {
    std::size_t start_line = line_;
    std::string text;
    while (i_ < src_.size()) {
      char c = cur();
      if (ident_char(c) || c == '.' || c == '\'') {
        text.push_back(c);
        advance();
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') && i_ < src_.size() &&
            (cur() == '+' || cur() == '-') && !text.empty() &&
            std::isdigit(static_cast<unsigned char>(text[0]))) {
          text.push_back(cur());
          advance();
        }
        continue;
      }
      break;
    }
    emit(Tok::kNumber, std::move(text), start_line);
  }

  void lex_ident_or_prefixed_string() {
    std::size_t start_line = line_;
    std::string text;
    while (i_ < src_.size() && ident_char(cur())) {
      text.push_back(cur());
      advance();
    }
    if (i_ < src_.size() && cur() == '"') {
      // String-literal prefixes: R, u8R, uR, UR, LR (raw) and u8, u, U,
      // L (ordinary). Anything else is an identifier adjoining a quote.
      if (text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
          text == "LR") {
        lex_raw_string();
        return;
      }
      if (text == "u8" || text == "u" || text == "U" || text == "L") {
        lex_string();
        return;
      }
    }
    emit(Tok::kIdent, std::move(text), start_line);
  }

  const std::string& src_;
  std::size_t i_ = 0;
  std::size_t line_ = 1;
  /// False until a code token (or include path) appears on the current
  /// line: a '#' only starts a directive when the line held no code.
  bool line_has_code_ = false;
  LexedFile out_;
};

}  // namespace

LexedFile lex(const std::string& content) { return Lexer(content).run(); }

}  // namespace osprey::lint
