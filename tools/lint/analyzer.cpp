#include "lint/analyzer.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <deque>
#include <functional>
#include <sstream>
#include <tuple>
#include <utility>

#include "lint/lexer.hpp"

namespace osprey::lint {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool is_ident(const Token& t) { return t.kind == Tok::kIdent; }
bool is_punct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

// Path predicates (identical scoping to the v1 scanner, plus serve in
// the wall-clock set: the serving tier runs on simulated time too).
bool rng_applies(const std::string& p) {
  return !starts_with(p, "src/num/rng.");
}
bool wall_clock_applies(const std::string& p) {
  return starts_with(p, "src/fabric/") || starts_with(p, "src/emews/") ||
         starts_with(p, "src/aero/") || starts_with(p, "src/serve/") ||
         starts_with(p, "src/shard/");
}
bool raw_thread_applies(const std::string& p) {
  return starts_with(p, "src/") && !starts_with(p, "src/util/");
}
bool fabric_applies(const std::string& p) {
  return starts_with(p, "src/fabric/");
}
bool serve_applies(const std::string& p) {
  return starts_with(p, "src/serve/");
}
bool aero_applies(const std::string& p) {
  return starts_with(p, "src/aero/");
}
// Cross-shard isolation: everything in src/shard/ EXCEPT the partition
// (the one sanctioned owner of per-partition orchestration state) must
// stay at the envelope level — no reaching into another partition's
// metadata db, flow service or AERO server, and no direct origin serve.
bool shard_isolation_applies(const std::string& p) {
  return starts_with(p, "src/shard/") &&
         !starts_with(p, "src/shard/partition.");
}

bool counter_name(const std::string& s) {
  if (s.size() < 2 || s.back() != '_') return false;
  for (char c : s) {
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  static const char* kWords[] = {"count", "completed", "failed", "succeeded",
                                 "fires", "injected", "processed", "total"};
  for (const char* w : kWords) {
    if (s.find(w) != std::string::npos) return true;
  }
  return false;
}

std::string dirname_of(const std::string& path) {
  std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kRules = {
      {"rng",
       "std::rand/srand/random_device outside src/num/rng — all randomness "
       "flows through the deterministic num::RngStream"},
      {"wall-clock",
       "chrono clocks / time() in a simulated layer (fabric, emews, aero, "
       "serve) — use virtual time or the injected util::Clock"},
      {"raw-thread",
       "std::thread outside src/util — concurrency is owned by "
       "util::ThreadPool / util::Channel"},
      {"relative-include",
       "#include \"../...\" — internal headers are included as "
       "\"<module>/<header>.hpp\" rooted at src/"},
      {"fabric-raw-throw",
       "throw std::runtime_error in src/fabric — fabric services fail "
       "through typed osprey::util errors so retry/fault layers can "
       "classify and recover"},
      {"adhoc-counter",
       "size_t/uint64_t counter member in src/fabric — counters belong in "
       "obs::MetricsRegistry so they reach snapshots and Prometheus"},
      {"serve-direct-origin",
       "AeroServer::serve_latest() from serve-tier code — reads go through "
       "serve::ResultCache::lookup() for hit/miss/revalidate accounting"},
      {"wal-bypass",
       "direct mutation of MetadataDb backing state (objects_/runs_) in "
       "src/aero — every mutation goes through the WAL append path; only "
       "MetadataDb::apply()/load_snapshot() carry allows"},
      {"test-registration",
       "tests/test_*.cpp not listed in tests/CMakeLists.txt — it would "
       "silently never run"},
      {"layering",
       "src-to-src include edge not declared in tools/osprey_layers.txt "
       "(the module-layering DAG util -> crypto/num -> gp/epi/rt/gsa -> "
       "fabric/emews/aero/obs -> serve/core)"},
      {"include-cycle",
       "cycle in the include graph — reported with the full include chain"},
      {"determinism-taint",
       "a fabric/serve/obs/aero function reaches a wall-clock / raw-RNG / "
       "raw-thread / getenv / unordered-iteration sink through the call "
       "graph (full call chain in the diagnostic); sanctioned owners are "
       "declared as taint barriers in tools/osprey_layers.txt"},
      {"shard-isolation",
       "orchestration-state type (MetadataDb / FlowsService / AeroServer / "
       "serve_latest) referenced in src/shard outside partition.* — the "
       "fabric and coordinator speak only in mailbox envelopes; "
       "ShardPartition is the sole owner of per-partition state"},
      {"stale-suppression",
       "a 'grandfathered' allow() suppression outlived the PR that "
       "introduced its rule — migrate the code instead (not suppressible)"},
  };
  return kRules;
}

std::string module_of(const std::string& path) {
  if (starts_with(path, "src/")) {
    std::size_t slash = path.find('/', 4);
    if (slash == std::string::npos) return "";
    return path.substr(4, slash - 4);
  }
  std::size_t slash = path.find('/');
  if (slash == std::string::npos) return "";
  std::string root = path.substr(0, slash);
  if (root == "tests" || root == "bench" || root == "tools" ||
      root == "examples") {
    return root;
  }
  return "";
}

void Analyzer::add_file(const std::string& path, const std::string& content) {
  Entry e;
  e.lexed = lex(content);
  for (const AllowMark& mark : e.lexed.allows) {
    auto& covered = e.allowed[mark.rule];
    covered.insert(mark.line);
    covered.insert(mark.line + 1);
  }
  files_[path] = std::move(e);
}

void Analyzer::set_test_registry(const std::string& cmake_content) {
  test_cmake_ = cmake_content;
  has_test_cmake_ = true;
}

// ---------------------------------------------------------------------------
// Token rules
// ---------------------------------------------------------------------------

void Analyzer::token_rules(const std::string& path, const Entry& e,
                           std::vector<Finding>& out) const {
  const std::vector<Token>& toks = e.lexed.tokens;
  auto report = [&](const char* rule, std::size_t line, std::string message) {
    if (e.allow_covers(rule, line)) return;
    out.push_back({path, line, rule, std::move(message), {}});
  };

  // relative-include works on the directive list: a directive quoted in
  // a comment or raw string never reaches it (the v1 false positive).
  for (const IncludeDirective& inc : e.lexed.includes) {
    if (!inc.angled && starts_with(inc.path, "../")) {
      report("relative-include", inc.line,
             "relative ../ include; include as \"<module>/<header>.hpp\" "
             "rooted at src/");
    }
  }

  const bool rng_on = rng_applies(path);
  const bool clock_on = wall_clock_applies(path);
  const bool thread_on = raw_thread_applies(path);
  const bool fabric_on = fabric_applies(path);
  const bool serve_on = serve_applies(path);
  const bool aero_on = aero_applies(path);
  const bool shard_on = shard_isolation_applies(path);

  auto bare_or_std = [&](std::size_t j) {
    if (j == 0) return true;
    const Token& prev = toks[j - 1];
    if (is_punct(prev, ".") || is_punct(prev, ">") || is_ident(prev)) {
      return false;
    }
    if (is_punct(prev, "::")) {
      return j >= 2 && is_ident(toks[j - 2]) && toks[j - 2].text == "std";
    }
    return true;
  };

  for (std::size_t j = 0; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (!is_ident(t)) continue;
    const std::string& s = t.text;
    const bool call_next = j + 1 < toks.size() && is_punct(toks[j + 1], "(");

    if (rng_on) {
      if (s == "random_device" || ((s == "rand" || s == "srand") && call_next)) {
        report("rng", t.line,
               "non-deterministic RNG; use num::RngStream (src/num/rng)");
      }
    }
    if (clock_on) {
      bool hit = s == "system_clock" || s == "steady_clock" ||
                 s == "high_resolution_clock";
      hit = hit || ((s == "gettimeofday" || s == "clock_gettime" ||
                     s == "localtime" || s == "mktime") &&
                    call_next);
      hit = hit || (s == "time" && call_next && bare_or_std(j));
      if (hit) {
        report("wall-clock", t.line,
               "wall clock in a simulated layer; use the fabric's virtual "
               "time or the injected util::Clock/util::SimClock");
      }
    }
    if (thread_on && (s == "thread" || s == "jthread") && j >= 2 &&
        is_punct(toks[j - 1], "::") && is_ident(toks[j - 2]) &&
        toks[j - 2].text == "std") {
      report("raw-thread", t.line,
             "raw std::thread outside src/util; use util::ThreadPool or a "
             "util-level primitive");
    }
    if (fabric_on && s == "throw" && j + 3 < toks.size() &&
        is_ident(toks[j + 1]) && toks[j + 1].text == "std" &&
        is_punct(toks[j + 2], "::") && is_ident(toks[j + 3]) &&
        toks[j + 3].text == "runtime_error") {
      report("fabric-raw-throw", t.line,
             "raw std::runtime_error from a fabric service; throw a typed "
             "osprey::util error (util/error.hpp) so retry/fault layers can "
             "catch and recover");
    }
    if (fabric_on && (s == "size_t" || s == "uint64_t")) {
      // [mutable] [std::] size_t|uint64_t countish_name_ [=;{] at the
      // start of a member declaration.
      std::size_t first = j;
      if (first >= 2 && is_punct(toks[first - 1], "::") &&
          is_ident(toks[first - 2]) && toks[first - 2].text == "std") {
        first -= 2;
      }
      if (first >= 1 && is_ident(toks[first - 1]) &&
          toks[first - 1].text == "mutable") {
        --first;
      }
      bool decl_start =
          first == 0 || is_punct(toks[first - 1], ";") ||
          is_punct(toks[first - 1], "{") || is_punct(toks[first - 1], "}") ||
          is_punct(toks[first - 1], ":");
      if (decl_start && j + 1 < toks.size() && is_ident(toks[j + 1]) &&
          counter_name(toks[j + 1].text) && j + 2 < toks.size() &&
          (is_punct(toks[j + 2], "=") || is_punct(toks[j + 2], ";") ||
           is_punct(toks[j + 2], "{"))) {
        report("adhoc-counter", toks[j + 1].line,
               "ad-hoc counter member in src/fabric; register an "
               "obs::Counter on the service's MetricsRegistry instead so "
               "the value reaches snapshots and the Prometheus export");
      }
    }
    if (aero_on && (s == "objects_" || s == "runs_") &&
        j + 2 < toks.size() && is_punct(toks[j + 1], ".") &&
        is_ident(toks[j + 2])) {
      // objects_.push_back(...), runs_.clear(), ... — a mutation of the
      // MetadataDb backing containers that did not come through the WAL
      // funnel. Reads (objects_.find, runs_.size, iteration) pass.
      static const char* kMutators[] = {"emplace", "emplace_back",
                                        "push_back", "pop_back",
                                        "erase", "insert", "clear"};
      const std::string& method = toks[j + 2].text;
      for (const char* m : kMutators) {
        if (method == m) {
          report("wal-bypass", t.line,
                 "direct mutation of MetadataDb backing state (" + s + "." +
                     method + "); every mutation must flow through the WAL "
                     "append path — MetadataDb::apply()/load_snapshot() are "
                     "the only sanctioned sites (each carries an allow)");
          break;
        }
      }
    }
    if (shard_on && (s == "MetadataDb" || s == "FlowsService" ||
                     s == "AeroServer" || s == "serve_latest")) {
      report("shard-isolation", t.line,
             "reference to per-partition orchestration state (" + s +
                 ") in src/shard outside partition.*; the fabric and "
                 "coordinator communicate only through mailbox envelopes — "
                 "move the access into ShardPartition");
    }
    if (serve_on && s == "serve_latest" && call_next) {
      report("serve-direct-origin", t.line,
             "direct serve_latest() from serve-tier code; go through "
             "serve::ResultCache::lookup() so every read gets hit/miss/"
             "revalidate accounting and invalidation (the cache's own "
             "origin fetch carries an allow)");
    }
  }

  // stale-suppression: grandfathering is a one-PR amnesty. Any allow()
  // still marked "grandfathered" after that PR merges is older than the
  // rule that introduced it, and must be fixed, not kept. Deliberately
  // not suppressible.
  for (const AllowMark& mark : e.lexed.allows) {
    if (!mark.grandfathered) continue;
    out.push_back({path, mark.line, "stale-suppression",
                   "grandfathered allow(" + mark.rule +
                       ") outlived the PR that introduced the rule; migrate "
                       "the code instead of carrying the suppression",
                   {}});
  }
}

// ---------------------------------------------------------------------------
// Include graph: layering + cycles
// ---------------------------------------------------------------------------

std::string Analyzer::resolve_include(const std::string& includer,
                                      const IncludeDirective& inc) const {
  if (inc.angled) return "";
  const std::string dir = dirname_of(includer);
  const std::string candidates[] = {
      dir.empty() ? inc.path : dir + "/" + inc.path,
      "src/" + inc.path,
      "tools/" + inc.path,
      inc.path,
  };
  for (const std::string& c : candidates) {
    if (files_.count(c) != 0) return c;
  }
  return "";
}

void Analyzer::structural_rules(const AnalyzerOptions& opts,
                                std::vector<Finding>& out) const {
  (void)opts;
  // Resolved project-internal include edges, deterministic order.
  std::map<std::string, std::vector<std::pair<std::size_t, std::string>>>
      edges;  // includer -> [(line, includee)]
  for (const auto& [path, entry] : files_) {
    auto& v = edges[path];
    for (const IncludeDirective& inc : entry.lexed.includes) {
      std::string target = resolve_include(path, inc);
      if (!target.empty() && target != path) v.emplace_back(inc.line, target);
    }
  }

  // Layering: every src-to-src cross-module edge must be declared.
  std::set<std::string> undeclared_reported;
  for (const auto& [path, targets] : edges) {
    if (!starts_with(path, "src/")) continue;
    const std::string m = module_of(path);
    if (m.empty()) continue;
    const Entry& entry = files_.at(path);
    if (!layers_.declared(m)) {
      if (undeclared_reported.insert(m).second) {
        out.push_back({path, 0, "layering",
                       "module '" + m +
                           "' is not declared in tools/osprey_layers.txt; "
                           "declare its layer and allowed dependencies",
                       {}});
      }
      continue;
    }
    for (const auto& [line, target] : targets) {
      if (!starts_with(target, "src/")) continue;
      const std::string n = module_of(target);
      if (n.empty() || n == m) continue;
      if (layers_.edge_allowed(m, n)) continue;
      if (entry.allow_covers("layering", line)) continue;
      std::string allowed;
      auto it = layers_.deps.find(m);
      if (it != layers_.deps.end()) {
        for (const std::string& d : it->second) {
          if (!allowed.empty()) allowed += ", ";
          allowed += d;
        }
      }
      out.push_back(
          {path, line, "layering",
           "include of \"" + target + "\" makes module '" + m +
               "' depend on '" + n +
               "', which the declared layering DAG does not allow (declared "
               "deps of " +
               m + ": " + (allowed.empty() ? "none" : allowed) + ")",
           {path + ":" + std::to_string(line) + "  #include \"" + target +
                "\"",
            target + ":1  module " + n}});
    }
  }

  // Include cycles: DFS, each cycle reported once (keyed by its file
  // set), anchored at its lexicographically smallest member.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::set<std::string> seen_cycles;
  std::vector<std::string> stack;

  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    stack.push_back(u);
    for (const auto& [line, v] : edges[u]) {
      if (color[v] == 1) {
        auto it = std::find(stack.begin(), stack.end(), v);
        std::vector<std::string> cycle(it, stack.end());
        std::string key;
        std::vector<std::string> sorted = cycle;
        std::sort(sorted.begin(), sorted.end());
        for (const std::string& f : sorted) key += f + "|";
        if (!seen_cycles.insert(key).second) continue;
        std::vector<std::string> chain;
        for (std::size_t k = 0; k < cycle.size(); ++k) {
          const std::string& from = cycle[k];
          const std::string& to = cycle[(k + 1) % cycle.size()];
          std::size_t at = 0;
          for (const auto& [l, tgt] : edges[from]) {
            if (tgt == to) {
              at = l;
              break;
            }
          }
          chain.push_back(from + ":" + std::to_string(at) +
                          "  #include \"" + to + "\"");
        }
        out.push_back({sorted.front(), 0, "include-cycle",
                       "include cycle: " + sorted.front() + " -> ... -> " +
                           sorted.front() + " (" +
                           std::to_string(cycle.size()) + " files)",
                       chain});
      } else if (color[v] == 0) {
        dfs(v);
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (const auto& [path, _] : edges) {
    if (color[path] == 0) dfs(path);
  }
}

// ---------------------------------------------------------------------------
// Determinism taint reachability
// ---------------------------------------------------------------------------

void Analyzer::taint_rule(std::vector<Finding>& out) const {
  struct Node {
    FunctionDef def;
    bool barrier = false;
  };
  std::vector<Node> nodes;
  for (const auto& [path, entry] : files_) {
    if (!starts_with(path, "src/")) continue;
    const bool barrier = layers_.barrier(path);
    for (FunctionDef& def : extract_functions(path, entry.lexed)) {
      // A suppressed seed site never seeds (allow at the sink kills the
      // whole derived family of findings).
      auto& seeds = def.seeds;
      seeds.erase(std::remove_if(seeds.begin(), seeds.end(),
                                 [&](const TaintSeed& s) {
                                   return entry.allow_covers(
                                       "determinism-taint", s.line);
                                 }),
                  seeds.end());
      if (barrier) seeds.clear();
      nodes.push_back({std::move(def), barrier});
    }
  }

  // Name index over non-barrier functions (taint cannot flow through a
  // barrier, so edges into barriers are irrelevant).
  std::map<std::string, std::vector<std::size_t>> by_base;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].barrier) by_base[nodes[i].def.base].push_back(i);
  }

  auto qualified_matches = [](const FunctionDef& def,
                              const std::vector<std::string>& quals) {
    if (quals.empty()) return true;
    // Split def.qualified into components and require `quals` to be a
    // suffix of the components preceding the base name.
    std::vector<std::string> comps;
    std::size_t pos = 0;
    while (true) {
      std::size_t sep = def.qualified.find("::", pos);
      if (sep == std::string::npos) {
        comps.push_back(def.qualified.substr(pos));
        break;
      }
      comps.push_back(def.qualified.substr(pos, sep - pos));
      pos = sep + 2;
    }
    if (comps.empty()) return false;
    comps.pop_back();  // drop base name
    if (quals.size() > comps.size()) return false;
    return std::equal(quals.rbegin(), quals.rend(), comps.rbegin());
  };

  // Reverse edges: callee -> (caller, call line).
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> callers(
      nodes.size());
  for (std::size_t u = 0; u < nodes.size(); ++u) {
    if (nodes[u].barrier) continue;
    for (const CallSite& site : nodes[u].def.calls) {
      auto it = by_base.find(site.name);
      if (it == by_base.end()) continue;
      for (std::size_t v : it->second) {
        if (v == u) continue;
        if (!qualified_matches(nodes[v].def, site.quals)) continue;
        callers[v].emplace_back(u, site.line);
      }
    }
  }

  // BFS from seeded functions toward callers; parent links give the
  // shortest call chain from any function to its nearest sink.
  struct Trace {
    bool tainted = false;
    std::size_t next = 0;      // toward the sink; self when seeded
    std::size_t call_line = 0; // line in THIS function calling `next`
    const TaintSeed* seed = nullptr;
  };
  std::vector<Trace> trace(nodes.size());
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].def.seeds.empty()) continue;
    trace[i] = {true, i, nodes[i].def.seeds.front().line,
                &nodes[i].def.seeds.front()};
    queue.push_back(i);
  }
  while (!queue.empty()) {
    std::size_t v = queue.front();
    queue.pop_front();
    for (const auto& [u, line] : callers[v]) {
      if (trace[u].tainted) continue;
      trace[u] = {true, v, line, nullptr};
      queue.push_back(u);
    }
  }

  // Report every tainted entry-point function with its chain.
  std::vector<std::size_t> entries;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!trace[i].tainted) continue;
    if (layers_.taint_entries.count(module_of(nodes[i].def.file)) == 0) {
      continue;
    }
    entries.push_back(i);
  }
  std::sort(entries.begin(), entries.end(), [&](std::size_t a, std::size_t b) {
    const FunctionDef& fa = nodes[a].def;
    const FunctionDef& fb = nodes[b].def;
    return std::tie(fa.file, fa.line, fa.qualified) <
           std::tie(fb.file, fb.line, fb.qualified);
  });

  for (std::size_t e : entries) {
    const FunctionDef& entry_def = nodes[e].def;
    const Entry& file_entry = files_.at(entry_def.file);
    if (file_entry.allow_covers("determinism-taint", entry_def.line)) continue;

    std::vector<std::string> chain;
    std::string pretty;
    std::size_t cur = e;
    const TaintSeed* seed = nullptr;
    while (true) {
      const FunctionDef& d = nodes[cur].def;
      chain.push_back(d.file + ":" + std::to_string(d.line) + "  " +
                      d.qualified);
      if (!pretty.empty()) pretty += " -> ";
      pretty += d.qualified;
      if (trace[cur].next == cur) {
        seed = trace[cur].seed;
        break;
      }
      cur = trace[cur].next;
    }
    if (seed == nullptr) continue;  // defensive; a chain always ends in a seed
    chain.push_back(nodes[cur].def.file + ":" +
                    std::to_string(seed->line) + "  " + seed->symbol + " [" +
                    seed->kind + "]");
    pretty += " -> " + seed->symbol;

    out.push_back(
        {entry_def.file, entry_def.line, "determinism-taint",
         "'" + entry_def.qualified + "' reaches non-deterministic " +
             seed->kind + " sink " + seed->symbol + " (" +
             nodes[cur].def.file + ":" + std::to_string(seed->line) +
             "): " + pretty,
         std::move(chain)});
  }
}

// ---------------------------------------------------------------------------
// test-registration
// ---------------------------------------------------------------------------

void Analyzer::registration_rule(std::vector<Finding>& out) const {
  if (!has_test_cmake_) return;
  for (const auto& [path, entry] : files_) {
    if (!starts_with(path, "tests/")) continue;
    std::size_t slash = path.rfind('/');
    std::string base = path.substr(slash + 1);
    if (base.rfind("test_", 0) != 0) continue;
    if (base.size() < 4 || base.substr(base.size() - 4) != ".cpp") continue;
    if (test_cmake_.find(base) != std::string::npos) continue;
    if (entry.any_allow("test-registration")) continue;
    out.push_back({path, 0, "test-registration",
                   "not registered in tests/CMakeLists.txt; it will never "
                   "run",
                   {}});
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<Finding> Analyzer::run(const AnalyzerOptions& opts) {
  std::vector<Finding> findings;
  for (const auto& [path, entry] : files_) {
    token_rules(path, entry, findings);
  }
  registration_rule(findings);
  if (opts.layering) structural_rules(opts, findings);
  if (opts.taint) taint_rule(findings);

  if (!opts.changed.empty()) {
    auto touches = [&](const Finding& f) {
      if (opts.changed.count(f.file) != 0) return true;
      for (const std::string& hop : f.chain) {
        std::size_t colon = hop.find(':');
        if (colon != std::string::npos &&
            opts.changed.count(hop.substr(0, colon)) != 0) {
          return true;
        }
      }
      return false;
    };
    findings.erase(
        std::remove_if(findings.begin(), findings.end(),
                       [&](const Finding& f) { return !touches(f); }),
        findings.end());
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

std::string findings_to_json(const std::vector<Finding>& findings,
                             std::size_t checked_files) {
  std::ostringstream js;
  js << "{\n  \"checked_files\": " << checked_files
     << ",\n  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    js << "    {\"file\": \"" << json_escape(f.file)
       << "\", \"line\": " << f.line << ", \"rule\": \""
       << json_escape(f.rule) << "\", \"message\": \""
       << json_escape(f.message) << "\"";
    if (!f.chain.empty()) {
      js << ", \"chain\": [";
      for (std::size_t k = 0; k < f.chain.size(); ++k) {
        js << "\"" << json_escape(f.chain[k]) << "\""
           << (k + 1 < f.chain.size() ? ", " : "");
      }
      js << "]";
    }
    js << "}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  js << "  ]\n}\n";
  return js.str();
}

}  // namespace osprey::lint
