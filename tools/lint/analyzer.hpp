#pragma once

/// \file analyzer.hpp
/// The osprey_lint whole-program analyzer. Files are added (from disk
/// by the CLI, in-memory by tests), then run() evaluates:
///
///   * the seven token-backed per-file rules inherited from v1 (rng,
///     wall-clock, raw-thread, relative-include, fabric-raw-throw,
///     adhoc-counter, serve-direct-origin) — now immune to the
///     string/comment false-positive class by construction;
///   * test-registration (tests/test_*.cpp present in CMakeLists.txt);
///   * stale-suppression (a "grandfathered" allow() outliving its PR);
///   * layering: every src-to-src include edge must be declared in
///     tools/osprey_layers.txt, and the include graph must be acyclic;
///   * determinism-taint: no fabric/serve/obs/aero function may reach a
///     wall-clock / raw-RNG / raw-thread / getenv / unordered-iteration
///     sink through the (conservative) call graph, except through a
///     declared taint barrier. Findings carry the full call chain.
///
/// Suppression: a comment `osprey-lint: allow(<rule>)` covers its own
/// line and the next; test-registration allows apply file-wide;
/// stale-suppression cannot be suppressed.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/callgraph.hpp"
#include "lint/layers.hpp"
#include "lint/token.hpp"

namespace osprey::lint {

struct Finding {
  std::string file;  // root-relative, '/' separators
  std::size_t line = 0;  // 1-based; 0 = whole-file finding
  std::string rule;
  std::string message;
  /// For structural rules: the include / call chain, one
  /// "<file>:<line>  <what>" element per hop (empty for token rules).
  std::vector<std::string> chain;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Stable rule catalog (drives --list-rules and the docs).
const std::vector<RuleInfo>& rule_catalog();

struct AnalyzerOptions {
  bool layering = true;  // layering + include-cycle rules
  bool taint = true;     // determinism-taint rule
  /// Non-empty => incremental (--diff-base) mode: only report findings
  /// anchored in, or whose chain touches, one of these files.
  std::set<std::string> changed;
};

class Analyzer {
 public:
  explicit Analyzer(LayerConfig layers) : layers_(std::move(layers)) {}

  /// `path` must be root-relative with '/' separators (it doubles as
  /// the module key, e.g. "src/fabric/event_loop.hpp").
  void add_file(const std::string& path, const std::string& content);

  /// Content of tests/CMakeLists.txt for the test-registration rule
  /// (rule is skipped when never set).
  void set_test_registry(const std::string& cmake_content);

  std::vector<Finding> run(const AnalyzerOptions& opts);

  std::size_t file_count() const { return files_.size(); }

 private:
  struct Entry {
    LexedFile lexed;
    /// Lines covered by an allow() per rule (a mark covers its own line
    /// and the next).
    std::map<std::string, std::set<std::size_t>> allowed;
    bool any_allow(const std::string& rule) const {
      return allowed.count(rule) != 0;
    }
    bool allow_covers(const std::string& rule, std::size_t line) const {
      auto it = allowed.find(rule);
      return it != allowed.end() && it->second.count(line) != 0;
    }
  };

  void token_rules(const std::string& path, const Entry& e,
                   std::vector<Finding>& out) const;
  void structural_rules(const AnalyzerOptions& opts,
                        std::vector<Finding>& out) const;
  void taint_rule(std::vector<Finding>& out) const;
  void registration_rule(std::vector<Finding>& out) const;

  /// Resolve a quoted include to a scanned file (empty = external).
  std::string resolve_include(const std::string& includer,
                              const IncludeDirective& inc) const;

  LayerConfig layers_;
  std::map<std::string, Entry> files_;
  std::string test_cmake_;
  bool has_test_cmake_ = false;
};

/// "src/fabric/x.hpp" -> "fabric"; "tests/foo.cpp" -> "tests"; paths
/// with no recognized root map to "" (never layer-checked).
std::string module_of(const std::string& path);

/// Deterministic JSON report (the --json artifact CI uploads).
std::string findings_to_json(const std::vector<Finding>& findings,
                             std::size_t checked_files);

}  // namespace osprey::lint
