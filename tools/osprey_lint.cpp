/// osprey_lint v2 — whole-program determinism & layering analyzer.
///
/// v1 was a per-line regex scanner; v2 lexes every file (comment-,
/// string- and raw-string-aware), builds the include graph and a
/// conservative call graph, and evaluates twelve rules: the seven
/// token-backed v1 rules plus layering, include-cycle,
/// determinism-taint (with full call chains), test-registration and
/// stale-suppression. See tools/lint/analyzer.hpp and DESIGN.md §6.
///
/// Usage:
///   osprey_lint [--root DIR] [--json FILE] [--layers FILE]
///               [--diff-base REF] [--no-layering] [--no-taint]
///               [--list-rules] [PATH ...]
///
/// PATHs are scanned recursively for C++ sources, relative to --root
/// (default: src tests bench tools). Exit codes: 0 clean, 1 findings,
/// 2 usage/configuration error.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/layers.hpp"

namespace fs = std::filesystem;
using osprey::lint::Analyzer;
using osprey::lint::AnalyzerOptions;
using osprey::lint::Finding;

namespace {

bool cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::string read_file(const fs::path& p, bool& ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  ok = true;
  return ss.str();
}

/// Root-relative path with '/' separators (the analyzer's file key).
std::string rel_key(const fs::path& root, const fs::path& p) {
  return fs::relative(p, root).generic_string();
}

/// `git diff --name-only REF` against the repo at `root`. Returns false
/// (and the caller prints to stderr) if git fails — --diff-base then
/// degrades to a full run rather than silently reporting nothing.
bool changed_since(const fs::path& root, const std::string& ref,
                   std::set<std::string>& out) {
  std::string cmd = "git -C '" + root.string() + "' diff --name-only '" +
                    ref + "' 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return false;
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) text.append(buf, n);
  if (pclose(pipe) != 0) return false;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) out.insert(line);
  }
  return true;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--json FILE] [--layers FILE]\n"
               "       [--diff-base REF] [--no-layering] [--no-taint]\n"
               "       [--list-rules] [PATH ...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string json_path;
  std::string layers_path;  // default: <root>/tools/osprey_layers.txt
  std::string diff_base;
  AnalyzerOptions opts;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string& into) {
      if (i + 1 >= argc) {
        std::cerr << "osprey_lint: " << arg << " needs a value\n";
        return false;
      }
      into = argv[++i];
      return true;
    };
    if (arg == "--root") {
      std::string v;
      if (!next(v)) return 2;
      root = v;
    } else if (arg == "--json") {
      if (!next(json_path)) return 2;
    } else if (arg == "--layers") {
      if (!next(layers_path)) return 2;
    } else if (arg == "--diff-base") {
      if (!next(diff_base)) return 2;
    } else if (arg == "--no-layering") {
      opts.layering = false;
    } else if (arg == "--no-taint") {
      opts.taint = false;
    } else if (arg == "--list-rules") {
      for (const auto& rule : osprey::lint::rule_catalog()) {
        std::cout << rule.id << "\n    " << rule.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "osprey_lint: unknown option " << arg << "\n";
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tests", "bench", "tools"};

  std::error_code ec;
  root = fs::absolute(root).lexically_normal();
  if (!fs::is_directory(root, ec) || ec) {
    std::cerr << "osprey_lint: bad --root: " << root.string() << "\n";
    return 2;
  }

  // Layering / taint configuration (required even with --no-layering
  // --no-taint only if present; absent config then just disables both).
  fs::path layers_file = layers_path.empty()
                             ? root / "tools" / "osprey_layers.txt"
                             : fs::path(layers_path);
  bool ok = false;
  std::string layers_text = read_file(layers_file, ok);
  if (!ok && (opts.layering || opts.taint)) {
    std::cerr << "osprey_lint: cannot read layer config "
              << layers_file.string() << "\n";
    return 2;
  }
  std::vector<std::string> config_errors;
  osprey::lint::LayerConfig layers =
      osprey::lint::parse_layers(layers_text, config_errors);
  if (!config_errors.empty()) {
    for (const std::string& e : config_errors) {
      std::cerr << "osprey_lint: " << layers_file.string() << ": " << e
                << "\n";
    }
    return 2;
  }

  Analyzer analyzer(std::move(layers));

  for (const std::string& p : paths) {
    fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    if (fs::is_regular_file(abs, ec)) {
      if (!cpp_source(abs)) continue;
      std::string content = read_file(abs, ok);
      if (ok) analyzer.add_file(rel_key(root, abs), content);
      continue;
    }
    if (!fs::is_directory(abs, ec)) {
      std::cerr << "osprey_lint: no such path: " << p << "\n";
      return 2;
    }
    std::vector<fs::path> files;
    for (auto it = fs::recursive_directory_iterator(abs, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_regular_file() && cpp_source(it->path())) {
        files.push_back(it->path());
      }
    }
    for (const fs::path& f : files) {
      std::string content = read_file(f, ok);
      if (ok) analyzer.add_file(rel_key(root, f), content);
    }
  }

  {
    std::string cmake = read_file(root / "tests" / "CMakeLists.txt", ok);
    if (ok) analyzer.set_test_registry(cmake);
  }

  if (!diff_base.empty()) {
    if (!changed_since(root, diff_base, opts.changed)) {
      std::cerr << "osprey_lint: git diff --name-only " << diff_base
                << " failed; running full analysis\n";
    } else if (opts.changed.empty()) {
      // Nothing changed: vacuously clean, but keep incremental mode on
      // so an unrelated pre-existing finding doesn't fail the run.
      opts.changed.insert("<nothing-changed>");
    }
  }

  std::vector<Finding> findings = analyzer.run(opts);

  for (const Finding& f : findings) {
    std::cout << f.file;
    if (f.line != 0) std::cout << ":" << f.line;
    std::cout << ": [" << f.rule << "] " << f.message << "\n";
    for (const std::string& hop : f.chain) {
      std::cout << "    " << hop << "\n";
    }
  }
  std::cout << "osprey_lint: " << analyzer.file_count() << " files, "
            << findings.size() << " finding(s)\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "osprey_lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << osprey::lint::findings_to_json(findings, analyzer.file_count());
  }
  return findings.empty() ? 0 : 1;
}
