// osprey_lint — project-specific invariant linter for the OSPREY
// reproduction. Enforces determinism and concurrency rules that a
// generic tool cannot know about:
//
//   rng               std::rand / srand / std::random_device are
//                     forbidden everywhere except src/num/rng.* — all
//                     randomness flows through the deterministic,
//                     splittable num::RngStream.
//   wall-clock        std::chrono clocks / time() / clock_gettime() are
//                     forbidden in the simulated layers (src/fabric,
//                     src/emews, src/aero) — simulated components must
//                     use the fabric's virtual time or the injected
//                     util::Clock / util::SimClock so runs replay
//                     bit-identically.
//   raw-thread        std::thread / std::jthread are forbidden in src/
//                     outside src/util — concurrency is owned by
//                     util::ThreadPool / util::Channel (tests and bench
//                     may spawn threads freely).
//   relative-include  #include "../..." is forbidden — internal headers
//                     are included as "<module>/<header>.hpp" rooted at
//                     src/.
//   fabric-raw-throw  `throw std::runtime_error` is forbidden in
//                     src/fabric — fabric services fail through typed
//                     osprey::util errors (util/error.hpp) so the retry
//                     and fault-injection layers can catch, classify
//                     and recover; an untyped throw escapes them.
//   adhoc-counter     new `std::size_t foo_count_ = 0;`-style counter
//                     members are forbidden in src/fabric — counters
//                     belong in obs::MetricsRegistry so they show up in
//                     snapshots and the Prometheus export. Pre-obs
//                     counters are grandfathered via allow().
//   serve-direct-origin
//                     calling AeroServer::serve_latest() is forbidden in
//                     src/serve — serving-tier reads go through
//                     serve::ResultCache::lookup() so every read gets
//                     hit/miss/revalidate accounting and invalidation;
//                     the cache's single origin-fetch site carries the
//                     allow().
//   test-registration every tests/test_*.cpp must be listed in
//                     tests/CMakeLists.txt, or it silently never runs.
//
// Suppression: a comment containing `osprey-lint: allow(<rule>)`
// suppresses that rule on its own line and on the line immediately
// below (so a suppression can sit in a comment above the flagged
// declaration). For test-registration the suppression may appear
// anywhere in the unregistered file.
//
// Usage:
//   osprey_lint [--root DIR] [--json FILE] [--list-rules] PATH...
//
// PATHs (files or directories, relative to --root which defaults to the
// current directory) are scanned for *.hpp/*.cpp/*.h/*.cc/*.cxx files.
// Exit status: 0 = clean, 1 = findings, 2 = usage/IO error.
//
// The scanner matches rules against a "code view" of each line with
// comments, string literals and char literals blanked out, so words in
// documentation or log messages never trip a rule.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;   // path relative to root, '/' separators
  std::size_t line;   // 1-based; 0 = whole-file finding
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Comment / string stripping
// ---------------------------------------------------------------------------

enum class ScanState { kCode, kBlockComment, kRawString };

struct Stripper {
  ScanState state = ScanState::kCode;
  std::string raw_delim;  // for kRawString: the ")delim" terminator

  /// Returns `line` with comments and literal contents replaced by
  /// spaces, preserving column positions.
  std::string strip(const std::string& line) {
    std::string out(line.size(), ' ');
    std::size_t i = 0;
    const std::size_t n = line.size();
    while (i < n) {
      if (state == ScanState::kBlockComment) {
        std::size_t end = line.find("*/", i);
        if (end == std::string::npos) return out;
        state = ScanState::kCode;
        i = end + 2;
        continue;
      }
      if (state == ScanState::kRawString) {
        std::size_t end = line.find(raw_delim, i);
        if (end == std::string::npos) return out;
        state = ScanState::kCode;
        i = end + raw_delim.size();
        continue;
      }
      char c = line[i];
      if (c == '/' && i + 1 < n && line[i + 1] == '/') return out;
      if (c == '/' && i + 1 < n && line[i + 1] == '*') {
        state = ScanState::kBlockComment;
        i += 2;
        continue;
      }
      if (c == 'R' && i + 1 < n && line[i + 1] == '"') {
        std::size_t paren = line.find('(', i + 2);
        if (paren != std::string::npos) {
          raw_delim = ")" + line.substr(i + 2, paren - (i + 2)) + "\"";
          state = ScanState::kRawString;
          out[i] = 'R';  // keep the token boundary visible
          i = paren + 1;
          continue;
        }
      }
      if (c == '"') {
        out[i] = '"';
        ++i;
        while (i < n && line[i] != '"') {
          if (line[i] == '\\') ++i;
          ++i;
        }
        if (i < n) out[i] = '"';
        ++i;
        continue;
      }
      if (c == '\'') {
        // Digit separators (1'000'000) are not char literals: a literal
        // quote never directly follows an identifier/number character.
        bool separator =
            i > 0 && (std::isalnum(static_cast<unsigned char>(line[i - 1])) ||
                      line[i - 1] == '_');
        if (!separator) {
          out[i] = '\'';
          ++i;
          while (i < n && line[i] != '\'') {
            if (line[i] == '\\') ++i;
            ++i;
          }
          if (i < n) out[i] = '\'';
          ++i;
          continue;
        }
      }
      out[i] = c;
      ++i;
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

struct LineRule {
  std::string id;
  std::regex pattern;
  std::string message;
  /// Returns true when the rule applies to this (root-relative) path.
  bool (*applies)(const std::string& path);
  /// Match against the raw line instead of the comment/string-stripped
  /// view (needed when the pattern itself targets a string literal,
  /// like an #include path).
  bool match_raw = false;
};

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool rule_rng_applies(const std::string& path) {
  return !starts_with(path, "src/num/rng.");
}

bool rule_wall_clock_applies(const std::string& path) {
  return starts_with(path, "src/fabric/") || starts_with(path, "src/emews/") ||
         starts_with(path, "src/aero/");
}

bool rule_raw_thread_applies(const std::string& path) {
  return starts_with(path, "src/") && !starts_with(path, "src/util/");
}

bool rule_everywhere(const std::string&) { return true; }

bool rule_fabric_throw_applies(const std::string& path) {
  return starts_with(path, "src/fabric/");
}

bool rule_serve_origin_applies(const std::string& path) {
  return starts_with(path, "src/serve/");
}

std::vector<LineRule> make_rules() {
  std::vector<LineRule> rules;
  rules.push_back({
      "rng",
      std::regex(R"((\bstd::)?\b(rand|srand)\s*\(|\brandom_device\b)"),
      "non-deterministic RNG; use num::RngStream (src/num/rng)",
      &rule_rng_applies,
  });
  rules.push_back({
      "wall-clock",
      std::regex(R"(\b(system_clock|steady_clock|high_resolution_clock)\b)"
                 R"(|\bgettimeofday\s*\(|\bclock_gettime\s*\()"
                 R"(|\b(std::)?time\s*\(|\blocaltime\s*\(|\bmktime\s*\()"),
      "wall clock in a simulated layer; use the fabric's virtual time or "
      "the injected util::Clock/util::SimClock",
      &rule_wall_clock_applies,
  });
  rules.push_back({
      "raw-thread",
      std::regex(R"(\bstd::j?thread\b)"),
      "raw std::thread outside src/util; use util::ThreadPool or a "
      "util-level primitive",
      &rule_raw_thread_applies,
  });
  rules.push_back({
      "relative-include",
      std::regex(R"(^\s*#\s*include\s*"\.\./)"),
      "relative ../ include; include as \"<module>/<header>.hpp\" rooted "
      "at src/",
      &rule_everywhere,
      /*match_raw=*/true,
  });
  rules.push_back({
      "fabric-raw-throw",
      std::regex(R"(\bthrow\s+std::runtime_error\b)"),
      "raw std::runtime_error from a fabric service; throw a typed "
      "osprey::util error (util/error.hpp) so retry/fault layers can "
      "catch and recover",
      &rule_fabric_throw_applies,
  });
  rules.push_back({
      "adhoc-counter",
      std::regex(
          R"(^\s*(?:mutable\s+)?(?:std::)?(?:size_t|uint64_t)\s+)"
          R"([a-z0-9_]*(?:count|counts|completed|failed|succeeded|fires|)"
          R"(injected|processed|total)[a-z0-9_]*_\s*[={;])"),
      "ad-hoc counter member in src/fabric; register an obs::Counter on "
      "the service's MetricsRegistry instead so the value reaches "
      "snapshots and the Prometheus export",
      &rule_fabric_throw_applies,
  });
  rules.push_back({
      "serve-direct-origin",
      std::regex(R"(\bserve_latest\s*\()"),
      "direct serve_latest() from serve-tier code; go through "
      "serve::ResultCache::lookup() so every read gets hit/miss/"
      "revalidate accounting and invalidation (the cache's own origin "
      "fetch carries an allow)",
      &rule_serve_origin_applies,
  });
  return rules;
}

bool has_allow(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("osprey-lint: allow(" + rule + ")") !=
         std::string::npos;
}

// ---------------------------------------------------------------------------
// Scanning
// ---------------------------------------------------------------------------

bool lintable_extension(const fs::path& p) {
  static const char* kExts[] = {".hpp", ".cpp", ".h", ".cc", ".cxx"};
  std::string ext = p.extension().string();
  return std::any_of(std::begin(kExts), std::end(kExts),
                     [&](const char* e) { return ext == e; });
}

std::string relative_slash_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  fs::path chosen = (ec || rel.empty()) ? p : rel;
  return chosen.generic_string();
}

void lint_file(const fs::path& path, const std::string& rel,
               const std::vector<LineRule>& rules,
               std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) {
    findings.push_back({rel, 0, "io", "cannot open file"});
    return;
  }
  std::vector<const LineRule*> active;
  for (const auto& r : rules) {
    if (r.applies(rel)) active.push_back(&r);
  }
  if (active.empty()) return;

  Stripper stripper;
  std::string raw;
  std::string prev_raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string code = stripper.strip(raw);
    for (const LineRule* r : active) {
      if (!std::regex_search(r->match_raw ? raw : code, r->pattern)) continue;
      if (has_allow(raw, r->id) || has_allow(prev_raw, r->id)) continue;
      findings.push_back({rel, lineno, r->id, r->message});
    }
    prev_raw = raw;
  }
}

/// tests/test_*.cpp must be named in tests/CMakeLists.txt.
void check_test_registration(const fs::path& root,
                             const std::vector<fs::path>& files,
                             std::vector<Finding>& findings) {
  fs::path cmakelists = root / "tests" / "CMakeLists.txt";
  std::ifstream in(cmakelists);
  if (!in) return;  // no tests dir in scan scope
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string cmake = ss.str();

  for (const fs::path& f : files) {
    std::string rel = relative_slash_path(f, root);
    if (!starts_with(rel, "tests/")) continue;
    std::string base = f.filename().string();
    if (base.rfind("test_", 0) != 0 || f.extension() != ".cpp") continue;
    if (cmake.find(base) != std::string::npos) continue;
    // File-level suppression: the unregistered file may opt out.
    std::ifstream tf(f);
    std::stringstream tss;
    tss << tf.rdbuf();
    if (tss.str().find("osprey-lint: allow(test-registration)") !=
        std::string::npos) {
      continue;
    }
    findings.push_back(
        {rel, 0, "test-registration",
         "not registered in tests/CMakeLists.txt; it will never run"});
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--json FILE] [--list-rules] PATH...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::optional<fs::path> json_out;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return usage(argv[0]);
      root = fs::path(argv[i]);
    } else if (arg == "--json") {
      if (++i >= argc) return usage(argv[0]);
      json_out = fs::path(argv[i]);
    } else if (arg == "--list-rules") {
      std::cout << "rng\nwall-clock\nraw-thread\nrelative-include\n"
                   "fabric-raw-throw\nadhoc-counter\nserve-direct-origin\n"
                   "test-registration\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);
  root = fs::absolute(root).lexically_normal();

  std::vector<fs::path> files;
  for (const std::string& in : inputs) {
    fs::path p = fs::path(in).is_absolute() ? fs::path(in) : root / in;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable_extension(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "osprey_lint: no such path: " << in << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  const std::vector<LineRule> rules = make_rules();
  std::vector<Finding> findings;
  for (const fs::path& f : files) {
    lint_file(f, relative_slash_path(f, root), rules, findings);
  }
  check_test_registration(root, files, findings);

  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  std::cout << "osprey_lint: " << files.size() << " file(s), "
            << findings.size() << " finding(s)\n";

  if (json_out) {
    std::ofstream js(*json_out);
    if (!js) {
      std::cerr << "osprey_lint: cannot write " << *json_out << "\n";
      return 2;
    }
    js << "{\n  \"checked_files\": " << files.size()
       << ",\n  \"findings\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      js << "    {\"file\": \"" << json_escape(f.file)
         << "\", \"line\": " << f.line << ", \"rule\": \""
         << json_escape(f.rule) << "\", \"message\": \""
         << json_escape(f.message) << "\"}"
         << (i + 1 < findings.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
  }

  return findings.empty() ? 0 : 1;
}
