#!/usr/bin/env bash
# CI entrypoint: runs the scripts/check.sh stages in two phases so the
# cheap invariant gates (lint, tidy, thread-safety build) fail fast
# before any sanitizer build is configured. Build directories persist
# between runs (and are cached by .github/workflows/ci.yml), so
# incremental CI runs only recompile what changed.
#
# Usage: scripts/ci.sh [fast|full]   (default: full)
#   fast  lint + tidy + tsa + tier1 + obs + bench smoke (no sanitizers)
#   full  everything
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-full}"

echo "=== ci: fail-fast gates (lint, tidy, thread-safety) ==="
scripts/check.sh lint tidy tsa

echo "=== ci: tier-1 build + tests ==="
scripts/check.sh tier1 obs bench

if [[ "$MODE" == "full" ]]; then
  echo "=== ci: sanitizer stages ==="
  scripts/check.sh asan ubsan tsan chaos recovery serve shard
fi

echo "=== ci: done ==="
