#!/usr/bin/env bash
# Tier-1 gate plus a ThreadSanitizer pass over the concurrency-heavy
# targets. Usage: scripts/check.sh [--skip-tsan]
#
#   1. Release build of everything + full ctest suite.
#   2. TSan build (-DOSPREY_SANITIZE=thread) running the channel/pool
#      tests (test_util_concurrency) and the EMEWS worker-pool tests
#      (test_emews_pool), the two suites that exercise real threads.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "== tsan: skipped (--skip-tsan) =="
  exit 0
fi

echo "== tsan: configure + build concurrency targets =="
cmake -B build-tsan -S . -DOSPREY_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target test_util_concurrency test_emews_pool

echo "== tsan: run concurrency tests =="
(cd build-tsan && ctest --output-on-failure \
  -R 'test_util_concurrency|test_emews_pool')

echo "== all checks passed =="
