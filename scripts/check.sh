#!/usr/bin/env bash
# Ordered verification gate for the OSPREY reproduction. Stages run
# cheapest-first so style/invariant breakage fails before any sanitizer
# build starts:
#
#   lint    tools/osprey_lint over src/ tests/ bench/ tools/ — the
#           whole-program analyzer: token rules, module-layering DAG,
#           include cycles, determinism-taint reachability. See
#           DESIGN.md §"Static analysis architecture".
#   tidy    clang-tidy with the repo .clang-tidy (SKIPPED when
#           clang-tidy is not installed).
#   tsa     Clang -Wthread-safety -Werror=thread-safety build via
#           -DOSPREY_THREAD_SAFETY=ON, including the negative
#           try_compile check (SKIPPED when clang++ is not installed).
#   tier1   Release build + full ctest suite (the seed gate).
#   obs     Observability gate: `ctest -L obs` (trace determinism,
#           exporter round trips, metrics semantics) plus
#           `osprey_trace --self-check`. See DESIGN.md §"Observability".
#   bench   Bench smoke: the Figure-2 R(t) scenario at reduced
#           iterations (OSPREY_BENCH_SMOKE=1), checking that
#           results/BENCH_fig2_rt.json is emitted and the warm-start
#           online refit beats the cold full refit.
#   asan    address+undefined sanitizer build, full ctest suite.
#   ubsan   standalone undefined-behavior sanitizer build, full ctest
#           suite (catches UB that ASan's instrumentation masks).
#   tsan    thread sanitizer build, concurrency-heavy suites only.
#   chaos   thread sanitizer build of the chaos suite: the 16-seed
#           fault-injection sweep (ctest -L chaos) plus the
#           retry/backoff property tests. See DESIGN.md §"Fault model".
#   recovery durability gate: thread sanitizer build of the WAL /
#           crash-recovery suite, then `ctest -L wal` (WAL framing,
#           torn/corrupt-log fuzzing, snapshot round trips, whole-server
#           crash drills, 16-seed kProcessCrash crash-replay sweep).
#           See DESIGN.md §"Durability".
#   serve   serving-tier gate: thread sanitizer build of the cache /
#           front-end suite, then `ctest -L serve` (invalidation,
#           stale-reason propagation, 16-seed flood replay). See
#           DESIGN.md §"Serving tier".
#   shard   sharded-fabric gate: thread sanitizer build of the
#           src/shard suite, then `ctest -L shard` (mailbox total
#           order, campaign round trips, per-partition WAL recovery,
#           and the 16-seed cross-shard-count byte-identity sweep with
#           chaos on), plus the scale bench at OSPREY_BENCH_SMOKE=1
#           checking results/BENCH_scale_workflow.json is emitted.
#           See DESIGN.md §"Sharded fabric".
#
# Usage: scripts/check.sh [--skip-tsan] [stage ...]
#   No stage arguments = run all stages in order. Naming stages runs
#   just those, still in canonical order. The summary table reports
#   PASS/FAIL/SKIP per stage; exit is non-zero if any stage FAILs.
set -uo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

ALL_STAGES=(lint tidy tsa tier1 obs bench asan ubsan tsan chaos recovery serve shard)
declare -A WANTED=()
SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    lint|tidy|tsa|tier1|obs|bench|asan|ubsan|tsan|chaos|recovery|serve|shard) WANTED[$arg]=1 ;;
    *) echo "unknown argument: $arg" >&2
       echo "usage: scripts/check.sh [--skip-tsan] [stage ...]" >&2
       echo "stages: ${ALL_STAGES[*]}" >&2
       exit 2 ;;
  esac
done

declare -A RESULT=()
FAILED=0

run_stage() {  # run_stage <name> <fn>
  local name="$1" fn="$2"
  if [[ ${#WANTED[@]} -gt 0 && -z "${WANTED[$name]:-}" ]]; then
    RESULT[$name]="-"
    return 0
  fi
  echo
  echo "== stage: $name =="
  local status
  "$fn"
  status=$?
  if [[ $status -eq 0 ]]; then
    RESULT[$name]="PASS"
  elif [[ $status -eq 99 ]]; then
    RESULT[$name]="SKIP"
  else
    RESULT[$name]="FAIL"
    FAILED=1
  fi
  return 0
}

stage_lint() {
  cmake -B build -S . >/dev/null &&
  cmake --build build --target osprey_lint -j "$JOBS" &&
  ./build/tools/osprey_lint --root . --json build/osprey_lint.json \
      src tests bench tools
}

stage_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping"
    return 99
  fi
  cmake -B build -S . >/dev/null &&
  find src tools -name '*.cpp' | sort |
      xargs -P "$JOBS" -n 8 clang-tidy -p build --quiet
}

stage_tsa() {
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "clang++ not installed; skipping thread-safety build"
    return 99
  fi
  cmake -B build-tsa -S . \
      -DCMAKE_CXX_COMPILER=clang++ \
      -DOSPREY_THREAD_SAFETY=ON >/dev/null &&
  cmake --build build-tsa -j "$JOBS"
}

stage_tier1() {
  cmake -B build -S . >/dev/null &&
  cmake --build build -j "$JOBS" &&
  (cd build && ctest --output-on-failure -j "$JOBS")
}

stage_obs() {
  cmake -B build -S . >/dev/null &&
  cmake --build build -j "$JOBS" \
      --target test_obs_trace test_obs_metrics osprey_trace &&
  (cd build && ctest --output-on-failure -j "$JOBS" -L obs) &&
  ./build/tools/osprey_trace --self-check
}

stage_bench() {
  cmake -B build -S . >/dev/null &&
  cmake --build build -j "$JOBS" --target bench_fig2_rt &&
  OSPREY_BENCH_SMOKE=1 ./build/bench/bench_fig2_rt &&
  test -s results/BENCH_fig2_rt.json &&
  echo "bench artifact: results/BENCH_fig2_rt.json"
}

stage_asan() {
  cmake -B build-asan -S . -DOSPREY_SANITIZE=address,undefined >/dev/null &&
  cmake --build build-asan -j "$JOBS" &&
  (cd build-asan && ctest --output-on-failure -j "$JOBS")
}

stage_ubsan() {
  cmake -B build-ubsan -S . -DOSPREY_SANITIZE=undefined >/dev/null &&
  cmake --build build-ubsan -j "$JOBS" &&
  (cd build-ubsan && ctest --output-on-failure -j "$JOBS")
}

stage_tsan() {
  if [[ "$SKIP_TSAN" == "1" ]]; then
    echo "skipped (--skip-tsan)"
    return 99
  fi
  cmake -B build-tsan -S . -DOSPREY_SANITIZE=thread >/dev/null &&
  cmake --build build-tsan -j "$JOBS" \
      --target test_util_concurrency test_emews_pool \
               test_emews_taskdb_stress &&
  (cd build-tsan && ctest --output-on-failure \
      -R 'test_util_concurrency|test_emews_pool|test_emews_taskdb_stress')
}

stage_chaos() {
  if [[ "$SKIP_TSAN" == "1" ]]; then
    echo "skipped (--skip-tsan)"
    return 99
  fi
  cmake -B build-tsan -S . -DOSPREY_SANITIZE=thread >/dev/null &&
  cmake --build build-tsan -j "$JOBS" \
      --target test_chaos_fabric test_retry_policy &&
  (cd build-tsan && ctest --output-on-failure -j "$JOBS" -L chaos) &&
  (cd build-tsan && ctest --output-on-failure -R '^test_retry_policy$')
}

stage_recovery() {
  if [[ "$SKIP_TSAN" == "1" ]]; then
    echo "skipped (--skip-tsan)"
    return 99
  fi
  cmake -B build-tsan -S . -DOSPREY_SANITIZE=thread >/dev/null &&
  cmake --build build-tsan -j "$JOBS" \
      --target test_aero_wal test_aero_recovery &&
  (cd build-tsan && ctest --output-on-failure -j "$JOBS" -L wal)
}

stage_serve() {
  if [[ "$SKIP_TSAN" == "1" ]]; then
    echo "skipped (--skip-tsan)"
    return 99
  fi
  cmake -B build-tsan -S . -DOSPREY_SANITIZE=thread >/dev/null &&
  cmake --build build-tsan -j "$JOBS" --target test_serve_cache &&
  (cd build-tsan && ctest --output-on-failure -j "$JOBS" -L serve)
}

stage_shard() {
  if [[ "$SKIP_TSAN" == "1" ]]; then
    echo "skipped (--skip-tsan)"
    return 99
  fi
  cmake -B build-tsan -S . -DOSPREY_SANITIZE=thread >/dev/null &&
  cmake --build build-tsan -j "$JOBS" \
      --target test_shard_fabric test_shard_replay &&
  (cd build-tsan && ctest --output-on-failure -j "$JOBS" -L shard) &&
  cmake -B build -S . >/dev/null &&
  cmake --build build -j "$JOBS" --target bench_scale_workflow &&
  OSPREY_BENCH_SMOKE=1 ./build/bench/bench_scale_workflow &&
  test -s results/BENCH_scale_workflow.json &&
  echo "bench artifact: results/BENCH_scale_workflow.json"
}

run_stage lint  stage_lint
[[ $FAILED -eq 0 ]] && run_stage tidy  stage_tidy
[[ $FAILED -eq 0 ]] && run_stage tsa   stage_tsa
[[ $FAILED -eq 0 ]] && run_stage tier1 stage_tier1
[[ $FAILED -eq 0 ]] && run_stage obs   stage_obs
[[ $FAILED -eq 0 ]] && run_stage bench stage_bench
[[ $FAILED -eq 0 ]] && run_stage asan  stage_asan
[[ $FAILED -eq 0 ]] && run_stage ubsan stage_ubsan
[[ $FAILED -eq 0 ]] && run_stage tsan  stage_tsan
[[ $FAILED -eq 0 ]] && run_stage chaos stage_chaos
[[ $FAILED -eq 0 ]] && run_stage recovery stage_recovery
[[ $FAILED -eq 0 ]] && run_stage serve stage_serve
[[ $FAILED -eq 0 ]] && run_stage shard stage_shard

echo
echo "== summary =="
for s in "${ALL_STAGES[@]}"; do
  printf '  %-6s %s\n' "$s" "${RESULT[$s]:-not run (earlier stage failed)}"
done
if [[ $FAILED -ne 0 ]]; then
  echo "check.sh: FAILED"
  exit 1
fi
echo "check.sh: all executed stages passed"
